//! Spatially sharded, deterministic parallel simulation engine.
//!
//! [`ShardedSim`] partitions a topology into `K` spatial shards — nodes
//! are grid-bucketed by position — each with its own event heaps and
//! scratch state, and advances them on a pool of scoped worker threads
//! under *conservative lookahead* synchronization: every shard runs
//! independently inside a window `[T, T + L)` and the shards exchange
//! cross-shard work (new transmissions) at barrier epochs between
//! windows.
//!
//! The lookahead bound `L` is the MAC turnaround delay: a protocol
//! callback running at time `t` enqueues its frame on the MAC at
//! `t + L`, so nothing a shard does inside a window can affect another
//! shard (or its own MAC) before the window closes. Transmissions begun
//! in a window are merged, numbered, and broadcast at the epoch barrier,
//! and every delivery of a frame happens at its airtime end — always a
//! later window than the one that emitted the frame under ALOHA, and
//! under a globally ordered serial MAC phase for carrier-sense MACs
//! (carrier sense has zero lookahead, so the MAC phase of a CSMA run is
//! executed as a single cross-shard merge in event order; the receive
//! phase still runs fully parallel).
//!
//! # Determinism
//!
//! The merged event stream is **invariant in the shard count**: runs
//! with `K ∈ {1, 2, 4, …}` produce byte-identical traces, stats, and
//! energy meters. The invariance is by construction:
//!
//! - Every random draw comes from a **per-node stream** derived from the
//!   builder seed and the node id (never from a per-shard or global
//!   sequential stream), so which shard a node lands on cannot move any
//!   draw.
//! - All cross-shard effects are mediated by the epoch barriers, where a
//!   single thread merges per-shard outboxes in a canonical
//!   `(start, node, tx-index)` order before assigning global sequence
//!   numbers.
//! - Within a window, every heap pop is ordered by an explicit
//!   `(time, lane, a, b)` key with no insertion-order component.
//! - Per-node counters (timer handles, MAC event sequence numbers,
//!   transmission indices) replace the serial engine's global counters.
//!
//! A single-shard run executes the *same* windowed algorithm with the
//! same per-node streams, so `--shards 1` is the reference output, not a
//! different engine. The serial [`crate::sim::Simulator`] draws from one
//! global RNG and therefore produces a (deterministic) stream of its
//! own; workloads choose one engine and stay on it.
//!
//! # Interference bookkeeping
//!
//! One global [`AirView`] replaces the serial `Medium`: a dense record
//! deque plus per-grid-cell and per-node sequence indexes (cell size =
//! radio range, so a 3×3 cell scan covers every in-range interferer).
//! It is only mutated by the merging thread (and by the globally ordered
//! CSMA MAC phase) and read concurrently by the receive phase.

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Barrier, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retri_obs::Obs;

use crate::energy::EnergyMeter;
use crate::fault::{ChurnEvent, FaultModel};
use crate::frame::{Frame, FramePayload};
use crate::mac::{DfaConfig, DfaStats, FrameSizing, MacConfig};
use crate::medium::{DeliveryFailure, Verdict};
use crate::node::{Command, Context, NodeId, Protocol, Timer, TimerHandle};
use crate::obs::NetsimObs;
use crate::radio::{DutyCycle, RadioConfig};
use crate::sim::{align_up, MediumStats};
use crate::time::{SimDuration, SimTime};
use crate::topology::{Position, Topology};
use crate::trace::{LossReason, TraceEvent, Tracer};

/// Derives the seed of one of a node's dedicated RNG streams.
///
/// Mirrors [`crate::fault::fault_stream_seed`]: fold the label bytes and
/// then the node id (little-endian) through SplitMix64. Distinct labels
/// and distinct nodes land in unrelated streams, and the derivation
/// depends only on `(seed, label, node)` — never on shard placement.
fn node_stream_seed(seed: u64, label: &str, node: NodeId) -> u64 {
    let mut state = seed;
    for &byte in label.as_bytes() {
        state ^= u64::from(byte);
        state = rand::splitmix64(&mut state);
    }
    for byte in node.0.to_le_bytes() {
        state ^= u64::from(byte);
        state = rand::splitmix64(&mut state);
    }
    state
}

/// Sorting key of a buffered trace event: `(microseconds, lane, a, b)`.
///
/// Lanes order same-instant events canonically: dynamics (0), then
/// transmission starts (1), then deliveries (2). `a`/`b` disambiguate
/// within a lane (dynamic index; sequence number; receiver id).
type TraceKey = (u64, u8, u64, u64);

/// Trace lane for liveness/movement events (`a` = dynamic index).
const LANE_T_DYN: u8 = 0;
/// Trace lane for `TxStart` (`a` = sequence number).
const LANE_T_TX: u8 = 1;
/// Trace lane for delivery outcomes (`a` = seq, `b` = receiver).
const LANE_T_RX: u8 = 2;

// MAC-phase heap lanes.
const LANE_M_DYN: u8 = 0;
const LANE_M_ENQ: u8 = 1;
const LANE_M_TXEND: u8 = 2;
const LANE_M_TRY: u8 = 3;

// Receive-phase heap lanes.
const LANE_R_DYN: u8 = 0;
const LANE_R_START: u8 = 1;
const LANE_R_DELIVER: u8 = 2;
const LANE_R_TIMER: u8 = 3;
/// DFA sender-side slot feedback, judged after every same-instant
/// delivery so the sender's verdict reads the same air state its
/// receivers did.
const LANE_R_FEEDBACK: u8 = 4;

/// Minimum owned nodes per shard before worker threads pay for their
/// per-window barrier traffic; below this the windowed loop runs
/// inline on the calling thread (identical output). Small testbeds —
/// a few dozen nodes sharded four ways — otherwise spend orders of
/// magnitude more time in barrier waits than in simulation.
pub const MIN_NODES_PER_SHARD: usize = 64;

/// A scheduled liveness or movement change (broadcast to every shard).
#[derive(Debug, Clone, Copy)]
enum DynAction {
    Move { node: NodeId, to: Position },
    SetAlive { node: NodeId, alive: bool },
}

/// MAC-phase event payload.
#[derive(Debug)]
enum MacKind {
    /// Apply a topology change to this shard's MAC replica.
    Dynamics(DynAction),
    /// A frame reaches the node's MAC queue (one turnaround after the
    /// protocol callback that sent it).
    Enqueue { node: NodeId, payload: FramePayload },
    /// The node's transmission `tx_idx` leaves the air.
    TxEnd { node: NodeId, tx_idx: u64 },
    /// The node attempts to transmit the head of its queue.
    Try { node: NodeId },
}

/// A MAC-phase event, ordered by `(at, lane, a, b)` where node-owned
/// lanes use `a` = node id and `b` = a per-node event counter, and the
/// dynamics lane uses `a` = the global dynamic index.
#[derive(Debug)]
struct MacEvent {
    at: SimTime,
    lane: u8,
    a: u64,
    b: u64,
    kind: MacKind,
}

impl MacEvent {
    fn key(&self) -> (SimTime, u8, u64, u64) {
        (self.at, self.lane, self.a, self.b)
    }
    /// The node this event is pinned to, if it is node-owned (dynamics
    /// are broadcast and stay put on shard rebalancing).
    fn node(&self) -> Option<NodeId> {
        match self.kind {
            MacKind::Dynamics(_) => None,
            MacKind::Enqueue { node, .. } | MacKind::TxEnd { node, .. } | MacKind::Try { node } => {
                Some(node)
            }
        }
    }
}

impl PartialEq for MacEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for MacEvent {}
impl PartialOrd for MacEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MacEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the smallest key pops
        // first.
        other.key().cmp(&self.key())
    }
}

/// Receive-phase event payload.
#[derive(Debug)]
enum RxKind {
    /// Apply a topology change to this shard's receive replica (the
    /// owner shard also records the trace event and reboots revived
    /// nodes).
    Dynamics { idx: u64, action: DynAction },
    /// Run a node's `on_start`.
    Start { node: NodeId },
    /// Judge delivery of transmission `seq` to this shard's owned
    /// neighbors of `sender`.
    Deliver { seq: u64, sender: NodeId },
    /// Fire a protocol timer.
    Timer { node: NodeId, timer: Timer },
    /// Judge Dynamic-Frame Aloha slot feedback for `sender`'s own
    /// transmission `seq` (routed only to the sender's owner shard):
    /// collision requeues the payload, and either way the sender
    /// re-contends at its frame boundary.
    DfaFeedback { seq: u64, sender: NodeId },
}

/// A receive-phase event, ordered by `(at, lane, a, b)`.
#[derive(Debug)]
struct RxEvent {
    at: SimTime,
    lane: u8,
    a: u64,
    b: u64,
    kind: RxKind,
}

impl RxEvent {
    fn key(&self) -> (SimTime, u8, u64, u64) {
        (self.at, self.lane, self.a, self.b)
    }
    fn node(&self) -> Option<NodeId> {
        match self.kind {
            RxKind::Start { node } | RxKind::Timer { node, .. } => Some(node),
            // Feedback lives on the sender's owner shard, so it follows
            // the sender across rebalances.
            RxKind::DfaFeedback { sender, .. } => Some(sender),
            RxKind::Dynamics { .. } | RxKind::Deliver { .. } => None,
        }
    }
}

impl PartialEq for RxEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for RxEvent {}
impl PartialOrd for RxEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RxEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

/// A pending master-topology update, applied at epoch barriers so the
/// master copy (used for the public accessor and shard rebalancing)
/// tracks the replicas.
#[derive(Debug)]
struct MasterDyn {
    at: SimTime,
    idx: u64,
    action: DynAction,
}

impl PartialEq for MasterDyn {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.idx) == (other.at, other.idx)
    }
}
impl Eq for MasterDyn {}
impl PartialOrd for MasterDyn {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MasterDyn {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.idx).cmp(&(self.at, self.idx))
    }
}

/// One transmission record in the shared air view.
///
/// The frame body is behind an `Arc` so per-shard ghost replicas share
/// it instead of deep-copying payload bytes.
#[derive(Debug)]
struct AirRecord {
    seq: u64,
    sender: NodeId,
    start: SimTime,
    end: SimTime,
    bits_on_air: u64,
    frame: Arc<Frame>,
    /// Grid cell of the sender at transmission start (the interference
    /// scan bucket; a sender relocating mid-flight keeps its record in
    /// the origin cell).
    cell: (i64, i64),
    /// Whether the transmission's MAC `TxEnd` has run (clears carrier
    /// sense; judgments ignore this flag, exactly like the serial
    /// medium).
    ended: bool,
}

impl AirRecord {
    fn overlaps(&self, start: SimTime, end: SimTime) -> bool {
        self.start < end && self.end > start
    }

    /// A copy for a shard-local ghost view. The `ended` flag is MAC
    /// phase state and never consulted by receive-phase judgments, so
    /// ghosts pin it to `false`.
    fn ghost_copy(&self) -> AirRecord {
        AirRecord {
            seq: self.seq,
            sender: self.sender,
            start: self.start,
            end: self.end,
            bits_on_air: self.bits_on_air,
            frame: Arc::clone(&self.frame),
            cell: self.cell,
            ended: false,
        }
    }
}

/// Read-only delivery-judgment queries over some view of the air —
/// implemented by the global [`AirView`] (serial windows) and by the
/// per-shard [`GhostAir`] replicas (threaded windows), so the receive
/// phase is lock-free either way.
trait AirReads {
    fn get(&self, seq: u64) -> Option<&AirRecord>;

    /// Whether `node`'s own radio is transmitting during `[start, end)`,
    /// other than `exclude_seq` (half-duplex check).
    fn transmitting_during(
        &self,
        node: NodeId,
        start: SimTime,
        end: SimTime,
        exclude_seq: u64,
    ) -> bool;

    /// Whether any foreign transmission audible at `receiver` overlaps
    /// `[start, end)` other than `exclude_seq`.
    fn interference_at(
        &self,
        receiver: NodeId,
        position: Position,
        start: SimTime,
        end: SimTime,
        exclude_seq: u64,
        topology: &Topology,
    ) -> bool;

    /// Per-receiver delivery verdict — the serial medium's precedence
    /// verbatim: half-duplex, then RF collision, then random loss.
    fn judge(
        &self,
        seq: u64,
        receiver: NodeId,
        position: Position,
        loss_draw: f64,
        frame_loss: f64,
        topology: &Topology,
    ) -> Verdict {
        let record = self.get(seq).expect("judging unknown transmission");
        if self.transmitting_during(receiver, record.start, record.end, seq) {
            Verdict::Failed(DeliveryFailure::HalfDuplex)
        } else if self.interference_at(receiver, position, record.start, record.end, seq, topology)
        {
            Verdict::Failed(DeliveryFailure::RfCollision)
        } else if loss_draw < frame_loss {
            Verdict::Failed(DeliveryFailure::RandomLoss)
        } else {
            Verdict::Delivered
        }
    }
}

/// The single, global view of the air shared by all shards.
///
/// Mirrors the serial [`crate::medium::Medium`] verdict logic exactly,
/// but indexes records by the sender's grid cell (cell size = radio
/// range) so interference queries scan a 3×3 neighborhood instead of
/// every concurrent transmission — the property that makes the shared
/// read-only view cheap at 10k nodes.
#[derive(Debug)]
struct AirView {
    cell_size: f64,
    /// Retained records in seq order; `records[i]` has `base_seq + i`.
    records: VecDeque<AirRecord>,
    base_seq: u64,
    /// Per-cell record sequence numbers, in insertion (= seq) order.
    cells: HashMap<(i64, i64), VecDeque<u64>>,
    /// Per-sender record sequence numbers, indexed by node.
    by_node: Vec<VecDeque<u64>>,
    /// Longest airtime ever inserted, in microseconds (monotone).
    max_airtime_micros: u64,
}

impl AirView {
    fn new(cell_size: f64) -> Self {
        AirView {
            cell_size,
            records: VecDeque::new(),
            base_seq: 0,
            cells: HashMap::new(),
            by_node: Vec::new(),
            max_airtime_micros: 0,
        }
    }

    fn cell_of(&self, position: Position) -> (i64, i64) {
        (
            (position.x / self.cell_size).floor() as i64,
            (position.y / self.cell_size).floor() as i64,
        )
    }

    fn add_node(&mut self) {
        self.by_node.push(VecDeque::new());
    }

    fn get(&self, seq: u64) -> Option<&AirRecord> {
        let index = usize::try_from(seq.checked_sub(self.base_seq)?).ok()?;
        self.records.get(index)
    }

    fn insert(&mut self, record: AirRecord) {
        debug_assert_eq!(
            record.seq,
            self.base_seq + self.records.len() as u64,
            "records must be inserted in sequence order"
        );
        self.max_airtime_micros = self
            .max_airtime_micros
            .max(record.end.since(record.start).as_micros());
        self.cells
            .entry(record.cell)
            .or_default()
            .push_back(record.seq);
        self.by_node[record.sender.index()].push_back(record.seq);
        self.records.push_back(record);
    }

    fn mark_ended(&mut self, seq: u64) {
        let index = usize::try_from(seq - self.base_seq).expect("record index fits usize");
        self.records[index].ended = true;
    }

    /// CSMA carrier sense: whether `listener` (at `position`) hears any
    /// ongoing foreign transmission at `now`.
    fn busy_for(
        &self,
        listener: NodeId,
        position: Position,
        now: SimTime,
        topology: &Topology,
    ) -> bool {
        let (cx, cy) = self.cell_of(position);
        for dx in -1..=1 {
            for dy in -1..=1 {
                let Some(seqs) = self.cells.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &seq in seqs {
                    let record = self.get(seq).expect("indexed record retained");
                    if !record.ended
                        && record.sender != listener
                        && record.start <= now
                        && record.end > now
                        && topology.in_range(record.sender, listener)
                    {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Drops front records ended before `horizon`. O(1) per record: the
    /// popped record has the globally smallest seq, which is also the
    /// front of its cell's and its sender's index deques.
    fn prune(&mut self, horizon: SimTime) {
        while let Some(front) = self.records.front() {
            if front.end >= horizon {
                break;
            }
            let record = self.records.pop_front().expect("front exists");
            self.base_seq += 1;
            let cell = self
                .cells
                .get_mut(&record.cell)
                .expect("cell index present");
            let popped = cell.pop_front();
            debug_assert_eq!(popped, Some(record.seq));
            if cell.is_empty() {
                self.cells.remove(&record.cell);
            }
            let by_node = &mut self.by_node[record.sender.index()];
            let popped = by_node.pop_front();
            debug_assert_eq!(popped, Some(record.seq));
        }
    }
}

impl AirReads for AirView {
    fn get(&self, seq: u64) -> Option<&AirRecord> {
        AirView::get(self, seq)
    }

    fn transmitting_during(
        &self,
        node: NodeId,
        start: SimTime,
        end: SimTime,
        exclude_seq: u64,
    ) -> bool {
        let Some(seqs) = self.by_node.get(node.index()) else {
            return false;
        };
        seqs.iter().any(|&seq| {
            let record = AirView::get(self, seq).expect("indexed record retained");
            seq != exclude_seq && record.overlaps(start, end)
        })
    }

    fn interference_at(
        &self,
        receiver: NodeId,
        position: Position,
        start: SimTime,
        end: SimTime,
        exclude_seq: u64,
        topology: &Topology,
    ) -> bool {
        let (cx, cy) = self.cell_of(position);
        for dx in -1..=1 {
            for dy in -1..=1 {
                let Some(seqs) = self.cells.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &seq in seqs {
                    let record = AirView::get(self, seq).expect("indexed record retained");
                    if seq != exclude_seq
                        && record.sender != receiver
                        && record.overlaps(start, end)
                        && topology.in_range(record.sender, receiver)
                    {
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// A shard-local replica of the air records the shard can possibly
/// need for receive-phase judgments — the "ghost cells" of the shard's
/// boundary. Maintained by the merging thread at epoch barriers, read
/// (and pruned) exclusively by the owning shard, so the threaded
/// receive phase never touches a shared lock.
///
/// A record is replicated only to shards whose nodes occupy a grid
/// cell within one ring of the sender's cell — every receiver and
/// every interferable pair sits within one cell of its counterpart
/// because the cell size equals the radio range. Scheduled mobility
/// and churn are delta-routed: when a move changes which cells a
/// shard's interest set covers, only that shard receives the in-flight
/// records of the gained cells (a backfill), instead of every record
/// being broadcast to every shard.
#[derive(Debug, Default)]
struct GhostAir {
    cell_size: f64,
    /// Live records in ascending-seq order (mirrors the global view's
    /// retention window for this shard's subset).
    order: VecDeque<u64>,
    records: HashMap<u64, AirRecord>,
    /// Per-cell record seqs, ascending.
    cells: HashMap<(i64, i64), VecDeque<u64>>,
    /// Per-sender record seqs, ascending.
    by_node: HashMap<u32, VecDeque<u64>>,
}

impl GhostAir {
    fn clear(&mut self, cell_size: f64) {
        self.cell_size = cell_size;
        self.order.clear();
        self.records.clear();
        self.cells.clear();
        self.by_node.clear();
    }

    /// Whether the replica already holds `seq` — the dedup check for
    /// interest-delta backfills (a cell can be lost and later regained
    /// while a record from it is still in flight).
    fn contains(&self, seq: u64) -> bool {
        self.records.contains_key(&seq)
    }

    /// Inserts a record. Barrier routing appends in ascending seq order
    /// (O(1)); interest-delta backfills may arrive out of order and pay
    /// a sorted insert instead.
    fn insert(&mut self, record: &AirRecord) {
        debug_assert!(
            !self.contains(record.seq),
            "ghost records are inserted at most once"
        );
        Self::ordered_push(&mut self.order, record.seq);
        Self::ordered_push(self.cells.entry(record.cell).or_default(), record.seq);
        Self::ordered_push(self.by_node.entry(record.sender.0).or_default(), record.seq);
        self.records.insert(record.seq, record.ghost_copy());
    }

    fn ordered_push(deque: &mut VecDeque<u64>, seq: u64) {
        if deque.back().is_none_or(|&last| last < seq) {
            deque.push_back(seq);
        } else {
            let at = deque
                .binary_search(&seq)
                .expect_err("seq not already present");
            deque.insert(at, seq);
        }
    }

    /// Mirrors [`AirView::prune`]: drops front records ended before
    /// `horizon`, stopping at the first retained one.
    fn prune(&mut self, horizon: SimTime) {
        while let Some(&seq) = self.order.front() {
            let record = &self.records[&seq];
            if record.end >= horizon {
                break;
            }
            self.order.pop_front();
            let record = self.records.remove(&seq).expect("ordered record present");
            if let Some(cell) = self.cells.get_mut(&record.cell) {
                let popped = cell.pop_front();
                debug_assert_eq!(popped, Some(seq));
                if cell.is_empty() {
                    self.cells.remove(&record.cell);
                }
            }
            if let Some(by_node) = self.by_node.get_mut(&record.sender.0) {
                let popped = by_node.pop_front();
                debug_assert_eq!(popped, Some(seq));
                if by_node.is_empty() {
                    self.by_node.remove(&record.sender.0);
                }
            }
        }
    }

    fn cell_of(&self, position: Position) -> (i64, i64) {
        (
            (position.x / self.cell_size).floor() as i64,
            (position.y / self.cell_size).floor() as i64,
        )
    }
}

impl AirReads for GhostAir {
    fn get(&self, seq: u64) -> Option<&AirRecord> {
        self.records.get(&seq)
    }

    fn transmitting_during(
        &self,
        node: NodeId,
        start: SimTime,
        end: SimTime,
        exclude_seq: u64,
    ) -> bool {
        let Some(seqs) = self.by_node.get(&node.0) else {
            return false;
        };
        seqs.iter().any(|&seq| {
            let record = &self.records[&seq];
            seq != exclude_seq && record.overlaps(start, end)
        })
    }

    fn interference_at(
        &self,
        receiver: NodeId,
        position: Position,
        start: SimTime,
        end: SimTime,
        exclude_seq: u64,
        topology: &Topology,
    ) -> bool {
        let (cx, cy) = self.cell_of(position);
        for dx in -1..=1 {
            for dy in -1..=1 {
                let Some(seqs) = self.cells.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &seq in seqs {
                    let record = &self.records[&seq];
                    if seq != exclude_seq
                        && record.sender != receiver
                        && record.overlaps(start, end)
                        && topology.in_range(record.sender, receiver)
                    {
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// A transmission begun inside the current window, pending global
/// sequence assignment (ALOHA) or already numbered (CSMA, whose MAC
/// phase runs in global order and numbers immediately).
#[derive(Debug)]
struct PendingTx {
    node: NodeId,
    /// Per-node transmission counter — the canonical tiebreak for
    /// same-instant starts.
    tx_idx: u64,
    start: SimTime,
    end: SimTime,
    bits_on_air: u64,
    airtime_micros: u64,
    /// Sender position at transmission start (grid-cell bucket).
    pos: Position,
    seq: Option<u64>,
    /// `None` when the record is already in the air view (CSMA).
    frame: Option<Arc<Frame>>,
}

/// A buffered airtime-span end (observability only). Spans end in the
/// same window their transmission starts when the airtime is shorter
/// than the lookahead, in which case the sequence number is not yet
/// assigned at `TxEnd` time.
#[derive(Debug)]
enum SpanEnd {
    Known {
        at_micros: u64,
        seq: u64,
    },
    Pending {
        at_micros: u64,
        node: NodeId,
        tx_idx: u64,
    },
}

/// Per-node state owned by exactly one shard.
#[derive(Debug)]
struct LocalNode<P> {
    id: NodeId,
    protocol: P,
    meter: EnergyMeter,
    queue: VecDeque<FramePayload>,
    transmitting: bool,
    duty_cycle: Option<DutyCycle>,
    /// MAC backoff draws.
    mac_rng: StdRng,
    /// Protocol callback draws (`ctx.rng()`).
    proto_rng: StdRng,
    /// Per-delivery random-loss draws (this node receiving).
    chan_rng: StdRng,
    /// Fault-channel draws (this node receiving).
    fault_rng: StdRng,
    /// Gilbert–Elliott state for this receiver (`true` = bad).
    fault_bad: bool,
    next_timer_handle: u64,
    cancelled: HashSet<TimerHandle>,
    /// Orders this node's MAC-phase events.
    mac_seq: u64,
    /// Counts this node's transmissions.
    tx_count: u64,
    /// `(tx_idx, seq)` pairs of in-flight transmissions whose global
    /// sequence number is known; consumed by `TxEnd`.
    assigned: VecDeque<(u64, u64)>,
    /// DFA only: the slot this node committed to transmit in within its
    /// current frame (the `MacTry` wakeup is on the heap).
    dfa_slot_at: Option<SimTime>,
    /// DFA only: where this node's current frame ends; the next frame
    /// starts at the first slot boundary at or after it.
    dfa_frame_end: SimTime,
}

impl<P> LocalNode<P> {
    fn new(seed: u64, id: NodeId, protocol: P) -> Self {
        LocalNode {
            id,
            protocol,
            meter: EnergyMeter::new(),
            queue: VecDeque::new(),
            transmitting: false,
            duty_cycle: None,
            mac_rng: StdRng::seed_from_u64(node_stream_seed(seed, "netsim.shard.mac", id)),
            proto_rng: StdRng::seed_from_u64(node_stream_seed(seed, "netsim.shard.proto", id)),
            chan_rng: StdRng::seed_from_u64(node_stream_seed(seed, "netsim.shard.chan", id)),
            fault_rng: StdRng::seed_from_u64(node_stream_seed(seed, "netsim.shard.fault", id)),
            fault_bad: false,
            next_timer_handle: 0,
            cancelled: HashSet::new(),
            mac_seq: 0,
            tx_count: 0,
            assigned: VecDeque::new(),
            dfa_slot_at: None,
            dfa_frame_end: SimTime::ZERO,
        }
    }

    /// Removes and returns the sequence number assigned to `tx_idx`, if
    /// the assignment barrier has run for it.
    fn take_assigned(&mut self, tx_idx: u64) -> Option<u64> {
        let pos = self.assigned.iter().position(|&(t, _)| t == tx_idx)?;
        self.assigned.remove(pos).map(|(_, seq)| seq)
    }
}

/// Read-mostly engine parameters shared by every phase of a run.
struct EngineCtx<'a> {
    radio: &'a RadioConfig,
    mac: &'a MacConfig,
    faults: &'a FaultModel,
    lookahead: SimDuration,
    tracing: bool,
    deadline: SimTime,
    owner: &'a [(u32, u32)],
}

impl EngineCtx<'_> {
    /// Local index of `node` on shard `shard` (which must own it).
    fn local(&self, shard: usize, node: NodeId) -> usize {
        let (s, l) = self.owner[node.index()];
        debug_assert_eq!(s as usize, shard, "event routed to non-owner shard");
        l as usize
    }
}

/// Mutable global state threaded through the CSMA MAC phase, which runs
/// in a single globally ordered drain and numbers transmissions (and
/// inserts their records) immediately, because carrier sense has zero
/// lookahead.
struct CsmaAir<'a> {
    air: &'a mut AirView,
    next_seq: &'a mut u64,
}

/// One spatial shard: its owned nodes, both event heaps, and private
/// topology replicas for each phase (the MAC and receive phases apply
/// broadcast dynamics independently, so each needs its own copy).
struct ShardCore<P> {
    index: usize,
    nodes: Vec<LocalNode<P>>,
    mac_heap: BinaryHeap<MacEvent>,
    rx_heap: BinaryHeap<RxEvent>,
    topo_mac: Topology,
    topo_rx: Topology,
    outbox: Vec<PendingTx>,
    span_ends: Vec<SpanEnd>,
    stats: MediumStats,
    /// Dynamic-Frame Aloha counters for this shard's owned nodes
    /// (frames/slots counted at the draw, outcomes at the feedback).
    dfa: DfaStats,
    trace_buf: Vec<(TraceKey, TraceEvent)>,
    commands: Vec<Command>,
    receiver_scratch: Vec<NodeId>,
    /// Shard-local air replica for the threaded receive phase (serial
    /// multi-shard windows maintain it too, so the replicas survive
    /// engine switches without a rebuild).
    ghost: GhostAir,
    /// Grid cells within one ring of any owned node — the cells whose
    /// air records this shard may need — refcounted by how many owned
    /// nodes contribute each cell, so a move patches the set with a
    /// ±1-ring delta instead of a full rebuild.
    interest: HashMap<(i64, i64), u32>,
    /// Windows this shard fast-forwarded through without dispatching a
    /// single event (no queued MAC work, no pending receive events).
    windows_skipped: u64,
    /// Whether the MAC phase of the current window had nothing to
    /// dispatch for this shard — combined with an idle receive phase it
    /// counts the window into [`Self::windows_skipped`].
    mac_was_idle: bool,
}

impl<P: Protocol> ShardCore<P> {
    fn new(index: usize, range: f64) -> Self {
        ShardCore {
            index,
            nodes: Vec::new(),
            mac_heap: BinaryHeap::new(),
            rx_heap: BinaryHeap::new(),
            topo_mac: Topology::new(range),
            topo_rx: Topology::new(range),
            outbox: Vec::new(),
            span_ends: Vec::new(),
            stats: MediumStats::default(),
            dfa: DfaStats::default(),
            trace_buf: Vec::new(),
            commands: Vec::new(),
            receiver_scratch: Vec::new(),
            ghost: GhostAir::default(),
            interest: HashMap::new(),
            windows_skipped: 0,
            mac_was_idle: true,
        }
    }

    /// The shard's next pending event time across both phases — the
    /// next-activity time the epoch barrier carries so idle shards can
    /// be fast-forwarded deterministically.
    fn next_at(&self) -> Option<SimTime> {
        match (self.mac_heap.peek(), self.rx_heap.peek()) {
            (Some(m), Some(r)) => Some(m.at.min(r.at)),
            (Some(m), None) => Some(m.at),
            (None, Some(r)) => Some(r.at),
            (None, None) => None,
        }
    }

    /// Whether the MAC phase would dispatch nothing in this window.
    /// A shard idle in both phases cannot produce or observe anything
    /// in the window: in-flight airtime always has a pending `TxEnd`
    /// and every ghost record that matters comes with a pending
    /// `Deliver`, so heap emptiness is the complete skip test.
    fn mac_idle(&self, t_end: SimTime, deadline: SimTime) -> bool {
        !self
            .mac_heap
            .peek()
            .is_some_and(|e| e.at < t_end && e.at <= deadline)
    }

    /// Whether the receive phase would dispatch nothing in this window.
    fn rx_idle(&self, t_end: SimTime, deadline: SimTime) -> bool {
        !self
            .rx_heap
            .peek()
            .is_some_and(|e| e.at < t_end && e.at <= deadline)
    }

    /// Pushes a node-owned MAC event, stamped with the node's private
    /// event counter (the canonical same-key tiebreak).
    fn push_mac(&mut self, at: SimTime, lane: u8, node: NodeId, local: usize, kind: MacKind) {
        let b = self.nodes[local].mac_seq;
        self.nodes[local].mac_seq += 1;
        self.mac_heap.push(MacEvent {
            at,
            lane,
            a: u64::from(node.0),
            b,
            kind,
        });
    }

    /// Drains this shard's MAC events inside `[.., t_end)` (ALOHA: no
    /// carrier sense, fully shard-parallel; new transmissions buffer in
    /// the outbox for the epoch barrier).
    fn run_phase1(&mut self, ctx: &EngineCtx<'_>, t_end: SimTime, obs: Option<&NetsimObs>) {
        while let Some(ev) = self.mac_heap.peek() {
            if ev.at >= t_end || ev.at > ctx.deadline {
                break;
            }
            let ev = self.mac_heap.pop().expect("peeked above");
            self.dispatch_mac(ev, ctx, None, obs);
        }
    }

    fn dispatch_mac(
        &mut self,
        ev: MacEvent,
        ctx: &EngineCtx<'_>,
        mut csma: Option<CsmaAir<'_>>,
        obs: Option<&NetsimObs>,
    ) {
        let at = ev.at;
        match ev.kind {
            MacKind::Dynamics(action) => match action {
                DynAction::Move { node, to } => self.topo_mac.set_position(node, to),
                DynAction::SetAlive { node, alive } => {
                    self.topo_mac.set_alive(node, alive);
                    if !alive {
                        let (shard, local) = ctx.owner[node.index()];
                        if shard as usize == self.index {
                            let state = &mut self.nodes[local as usize];
                            state.queue.clear();
                            state.transmitting = false;
                            state.dfa_slot_at = None;
                            state.dfa_frame_end = SimTime::ZERO;
                        }
                    }
                }
            },
            MacKind::Enqueue { node, payload } => {
                // A node that died during the turnaround delay never
                // hands the frame to its MAC (death clears MAC state
                // until revival).
                if self.topo_mac.is_alive(node) {
                    let local = ctx.local(self.index, node);
                    self.nodes[local].queue.push_back(payload);
                    self.push_mac(at, LANE_M_TRY, node, local, MacKind::Try { node });
                }
            }
            MacKind::TxEnd { node, tx_idx } => {
                let local = ctx.local(self.index, node);
                self.nodes[local].transmitting = false;
                let seq = self.nodes[local].take_assigned(tx_idx);
                if let (Some(cs), Some(seq)) = (csma.as_mut(), seq) {
                    cs.air.mark_ended(seq);
                }
                if obs.is_some() {
                    self.span_ends.push(match seq {
                        Some(seq) => SpanEnd::Known {
                            at_micros: at.as_micros(),
                            seq,
                        },
                        None => SpanEnd::Pending {
                            at_micros: at.as_micros(),
                            node,
                            tx_idx,
                        },
                    });
                }
                if ctx.mac.dfa_config().is_none() {
                    // Next frame, after the inter-frame space. Under DFA
                    // the slot feedback (receive phase) schedules the
                    // re-contention at the frame boundary instead.
                    let retry = at + ctx.mac.ifs;
                    self.push_mac(retry, LANE_M_TRY, node, local, MacKind::Try { node });
                }
            }
            MacKind::Try { node } => self.mac_try(at, node, ctx, csma, obs),
        }
    }

    /// DFA framing on the sharded engine: commits the node to one
    /// uniformly drawn slot of its next frame (drawn from the node's
    /// private MAC stream, so the draw is shard-placement invariant)
    /// and schedules the wakeup. Returns `true` when `mac_try` should
    /// transmit right now — the committed slot has arrived.
    fn dfa_frame_step(&mut self, at: SimTime, node: NodeId, local: usize, dfa: DfaConfig) -> bool {
        if let Some(slot_at) = self.nodes[local].dfa_slot_at {
            if at == slot_at {
                return true;
            }
            if at < slot_at {
                // An early try (e.g. a freshly queued frame); the slot
                // wakeup is already on the heap.
                return false;
            }
            // A stale commitment from before the node's queue drained
            // or the node died; fall through and draw a fresh frame.
        }
        let estimate = match dfa.sizing {
            FrameSizing::Estimated => self.nodes[local].protocol.population_estimate(at),
            _ => None,
        };
        let slots = u64::from(dfa.frame_length(estimate));
        // The frame starts at the next slot boundary after both `at`
        // and the previous frame's end, on the absolute slot grid every
        // node shares.
        let begin = at.max(self.nodes[local].dfa_frame_end);
        let frame_start = align_up(begin, dfa.slot);
        let slot_index = self.nodes[local].mac_rng.gen_range(0..slots);
        let slot_at = frame_start + dfa.slot * slot_index;
        let frame_end = frame_start + dfa.slot * slots;
        let state = &mut self.nodes[local];
        state.dfa_slot_at = Some(slot_at);
        state.dfa_frame_end = frame_end;
        self.dfa.frames += 1;
        self.dfa.slots += slots;
        self.push_mac(slot_at, LANE_M_TRY, node, local, MacKind::Try { node });
        false
    }

    fn mac_try(
        &mut self,
        at: SimTime,
        node: NodeId,
        ctx: &EngineCtx<'_>,
        mut csma: Option<CsmaAir<'_>>,
        obs: Option<&NetsimObs>,
    ) {
        if !self.topo_mac.is_alive(node) {
            return;
        }
        let local = ctx.local(self.index, node);
        {
            let state = &self.nodes[local];
            if state.transmitting || state.queue.is_empty() {
                return;
            }
        }
        if let Some(&dfa) = ctx.mac.dfa_config() {
            if !self.dfa_frame_step(at, node, local, dfa) {
                return;
            }
            self.nodes[local].dfa_slot_at = None;
        }
        let pos = self.topo_mac.position(node);
        if let Some(cs) = csma.as_mut() {
            if cs.air.busy_for(node, pos, at, &self.topo_mac) {
                let slots = u64::from(
                    self.nodes[local]
                        .mac_rng
                        .gen_range(1..=ctx.mac.max_backoff_slots),
                );
                if let Some(o) = obs {
                    o.mac_backoffs.inc();
                    o.mac_backoff_slots.add(slots);
                }
                let retry = at + ctx.mac.backoff_slot * slots;
                self.push_mac(retry, LANE_M_TRY, node, local, MacKind::Try { node });
                return;
            }
        }
        let state = &mut self.nodes[local];
        let payload = state.queue.pop_front().expect("checked non-empty above");
        let bits_on_air = ctx.radio.bits_on_air(payload.bits());
        let airtime = ctx.radio.airtime(payload.bits());
        let end = at + airtime;
        let tx_idx = state.tx_count;
        state.tx_count += 1;
        state.transmitting = true;
        state.meter.record_tx(bits_on_air, airtime.as_micros());
        let mut pending = PendingTx {
            node,
            tx_idx,
            start: at,
            end,
            bits_on_air,
            airtime_micros: airtime.as_micros(),
            pos,
            seq: None,
            frame: Some(Arc::new(Frame::new(node, payload))),
        };
        if let Some(cs) = csma.as_mut() {
            // Carrier-sense MACs run this phase in global event order,
            // so number and insert the record immediately: later
            // same-window carrier senses must hear it.
            let seq = *cs.next_seq;
            *cs.next_seq += 1;
            let cell = cs.air.cell_of(pos);
            cs.air.insert(AirRecord {
                seq,
                sender: node,
                start: at,
                end,
                bits_on_air,
                frame: pending.frame.take().expect("frame present"),
                cell,
                ended: false,
            });
            self.nodes[local].assigned.push_back((tx_idx, seq));
            pending.seq = Some(seq);
        }
        self.outbox.push(pending);
        self.push_mac(
            end,
            LANE_M_TXEND,
            node,
            local,
            MacKind::TxEnd { node, tx_idx },
        );
    }

    /// Drains this shard's receive events inside `[.., t_end)` — fully
    /// shard-parallel; the air view is read-only here.
    fn run_phase2<A: AirReads>(
        &mut self,
        ctx: &EngineCtx<'_>,
        t_end: SimTime,
        air: &A,
        obs: Option<&NetsimObs>,
    ) {
        while let Some(ev) = self.rx_heap.peek() {
            if ev.at >= t_end || ev.at > ctx.deadline {
                break;
            }
            let ev = self.rx_heap.pop().expect("peeked above");
            self.dispatch_rx(ev, ctx, air, obs);
        }
    }

    /// The threaded receive phase: reads this shard's own ghost air
    /// replica, so no shared state (and no lock) is touched.
    fn run_phase2_ghost(&mut self, ctx: &EngineCtx<'_>, t_end: SimTime, obs: Option<&NetsimObs>) {
        let ghost = std::mem::take(&mut self.ghost);
        self.run_phase2(ctx, t_end, &ghost, obs);
        self.ghost = ghost;
    }

    fn owns(&self, ctx: &EngineCtx<'_>, node: NodeId) -> bool {
        ctx.owner[node.index()].0 as usize == self.index
    }

    fn dispatch_rx<A: AirReads>(
        &mut self,
        ev: RxEvent,
        ctx: &EngineCtx<'_>,
        air: &A,
        obs: Option<&NetsimObs>,
    ) {
        let at = ev.at;
        match ev.kind {
            RxKind::Dynamics { idx, action } => match action {
                DynAction::Move { node, to } => {
                    self.topo_rx.set_position(node, to);
                    if ctx.tracing && self.owns(ctx, node) {
                        self.trace_buf.push((
                            (at.as_micros(), LANE_T_DYN, idx, 0),
                            TraceEvent::Moved { at, node, to },
                        ));
                    }
                }
                DynAction::SetAlive { node, alive } => {
                    self.topo_rx.set_alive(node, alive);
                    if self.owns(ctx, node) {
                        if ctx.tracing {
                            self.trace_buf.push((
                                (at.as_micros(), LANE_T_DYN, idx, 0),
                                TraceEvent::Liveness { at, node, alive },
                            ));
                        }
                        if alive {
                            // A reborn node boots afresh.
                            self.rx_heap.push(RxEvent {
                                at,
                                lane: LANE_R_START,
                                a: u64::from(node.0),
                                b: 0,
                                kind: RxKind::Start { node },
                            });
                        }
                    }
                }
            },
            RxKind::Start { node } => {
                if self.topo_rx.is_alive(node) {
                    let local = ctx.local(self.index, node);
                    self.with_ctx(local, at, ctx, |protocol, c| protocol.on_start(c));
                    self.drain_commands(local, at, ctx);
                }
            }
            RxKind::Timer { node, timer } => {
                let local = ctx.local(self.index, node);
                let state = &mut self.nodes[local];
                let cancelled =
                    !state.cancelled.is_empty() && state.cancelled.remove(&timer.handle);
                if !cancelled && self.topo_rx.is_alive(node) {
                    self.with_ctx(local, at, ctx, |protocol, c| protocol.on_timer(c, timer));
                    self.drain_commands(local, at, ctx);
                }
            }
            RxKind::Deliver { seq, sender } => self.deliver(at, seq, sender, ctx, air, obs),
            RxKind::DfaFeedback { seq, sender } => self.dfa_feedback(at, seq, sender, ctx, air),
        }
    }

    /// Sender-side DFA slot feedback, mirroring the serial engine's
    /// `tx_end`: the transmission collided iff a foreign audible
    /// transmission overlapped its airtime. A collided frame is
    /// requeued, and either way the sender re-contends at its frame
    /// boundary — pushed past the current window so the retry never
    /// lands behind this window's already-run MAC phase (the boundary
    /// `window_end(at, lookahead)` depends only on the lookahead, so
    /// the deferral is shard-count invariant).
    fn dfa_feedback<A: AirReads>(
        &mut self,
        at: SimTime,
        seq: u64,
        sender: NodeId,
        ctx: &EngineCtx<'_>,
        air: &A,
    ) {
        let record = air.get(seq).expect("feedback record retained");
        let position = self.topo_rx.position(sender);
        let collided = air.interference_at(
            sender,
            position,
            record.start,
            record.end,
            seq,
            &self.topo_rx,
        );
        let local = ctx.local(self.index, sender);
        if collided {
            self.dfa.collisions += 1;
            if self.topo_rx.is_alive(sender) {
                let payload = record.frame.payload.clone();
                self.nodes[local].queue.push_front(payload);
            }
        } else {
            self.dfa.successes += 1;
        }
        let frame_end = self.nodes[local].dfa_frame_end;
        let retry = frame_end.max(window_end(at, ctx.lookahead));
        self.push_mac(
            retry,
            LANE_M_TRY,
            sender,
            local,
            MacKind::Try { node: sender },
        );
    }

    /// Judges delivery of transmission `seq` to every owned neighbor of
    /// `sender`, in node id order — the serial engine's `tx_end`
    /// receiver loop with per-receiver RNG streams.
    fn deliver<A: AirReads>(
        &mut self,
        at: SimTime,
        seq: u64,
        sender: NodeId,
        ctx: &EngineCtx<'_>,
        air: &A,
        obs: Option<&NetsimObs>,
    ) {
        let mut receivers = std::mem::take(&mut self.receiver_scratch);
        receivers.extend(
            self.topo_rx
                .neighbors(sender)
                .filter(|r| self.owns(ctx, *r)),
        );
        if receivers.is_empty() {
            self.receiver_scratch = receivers;
            return;
        }
        let record = air.get(seq).expect("delivery record retained");
        let bits_on_air = record.bits_on_air;
        let tx_start = record.start;
        let tx_end_at = record.end;
        let airtime_micros = tx_end_at.since(tx_start).as_micros();
        let rx_nj = bits_on_air as f64 * ctx.radio.energy.rx_nj_per_bit;
        for &receiver in &receivers {
            let local = ctx.local(self.index, receiver);
            // Draw before any filtering so the stream is identical
            // across duty-cycle and fault configurations.
            let draw: f64 = self.nodes[local].chan_rng.gen_range(0.0..1.0);
            if ctx.faults.severs(sender, receiver, at) {
                self.stats.partition_losses += 1;
                if let Some(o) = obs {
                    o.drop_for(LossReason::Partitioned);
                }
                self.trace_rx(ctx, at, seq, receiver, || TraceEvent::Lost {
                    at,
                    from: sender,
                    to: receiver,
                    seq,
                    reason: LossReason::Partitioned,
                });
                continue;
            }
            if let Some(duty) = self.nodes[local].duty_cycle {
                if !duty.awake_during(tx_start, tx_end_at) {
                    self.stats.sleep_misses += 1;
                    if let Some(o) = obs {
                        o.drop_for(LossReason::Asleep);
                    }
                    self.trace_rx(ctx, at, seq, receiver, || TraceEvent::Lost {
                        at,
                        from: sender,
                        to: receiver,
                        seq,
                        reason: LossReason::Asleep,
                    });
                    continue;
                }
            }
            let position = self.topo_rx.position(receiver);
            let verdict = air.judge(
                seq,
                receiver,
                position,
                draw,
                ctx.radio.frame_loss,
                &self.topo_rx,
            );
            match verdict {
                Verdict::Failed(failure) => {
                    match failure {
                        DeliveryFailure::HalfDuplex => self.stats.half_duplex_losses += 1,
                        DeliveryFailure::RfCollision => {
                            self.nodes[local]
                                .meter
                                .record_rx(bits_on_air, airtime_micros);
                            self.stats.rf_collisions += 1;
                        }
                        DeliveryFailure::RandomLoss => {
                            self.nodes[local]
                                .meter
                                .record_rx(bits_on_air, airtime_micros);
                            self.stats.random_losses += 1;
                        }
                    }
                    if let Some(o) = obs {
                        o.drop_for(failure.into());
                        if !matches!(failure, DeliveryFailure::HalfDuplex) {
                            o.energy_rx_nj.shift(rx_nj);
                        }
                    }
                    self.trace_rx(ctx, at, seq, receiver, || TraceEvent::Lost {
                        at,
                        from: sender,
                        to: receiver,
                        seq,
                        reason: failure.into(),
                    });
                }
                Verdict::Delivered => {
                    self.nodes[local]
                        .meter
                        .record_rx(bits_on_air, airtime_micros);
                    if let Some(o) = obs {
                        o.energy_rx_nj.shift(rx_nj);
                    }
                    // The fault channel judges last, from the receiver's
                    // own fault stream: erasure drops the frame, a
                    // positive BER may flip bits on a per-receiver copy.
                    let mut corrupted: Option<(Frame, u64)> = None;
                    if let Some(channel) = ctx.faults.channel() {
                        let state = &mut self.nodes[local];
                        let fault = channel.judge_frame(&mut state.fault_bad, &mut state.fault_rng);
                        if fault.erased {
                            self.stats.fault_erasures += 1;
                            if let Some(o) = obs {
                                o.drop_for(LossReason::FaultErasure);
                            }
                            self.trace_rx(ctx, at, seq, receiver, || TraceEvent::Lost {
                                at,
                                from: sender,
                                to: receiver,
                                seq,
                                reason: LossReason::FaultErasure,
                            });
                            continue;
                        }
                        if fault.bit_error_rate > 0.0 {
                            let mut mangled = (*record.frame).clone();
                            let mut flipped = 0u64;
                            for bit in 0..mangled.payload.bits() {
                                if state.fault_rng.gen_range(0.0..1.0) < fault.bit_error_rate {
                                    mangled.payload.flip_bit(bit);
                                    flipped += 1;
                                }
                            }
                            if flipped > 0 {
                                corrupted = Some((mangled, flipped));
                            }
                        }
                    }
                    self.stats.deliveries += 1;
                    if let Some(o) = obs {
                        o.deliveries.inc();
                    }
                    match corrupted {
                        Some((mangled, flipped)) => {
                            self.stats.corrupted_deliveries += 1;
                            self.stats.flipped_bits += flipped;
                            if let Some(o) = obs {
                                o.corrupted_deliveries.inc();
                                o.flipped_bits.add(flipped);
                            }
                            self.trace_rx(ctx, at, seq, receiver, || TraceEvent::Corrupted {
                                at,
                                from: sender,
                                to: receiver,
                                seq,
                                flipped_bits: flipped,
                            });
                            self.with_ctx(local, at, ctx, |protocol, c| {
                                protocol.on_frame(c, &mangled);
                            });
                            self.drain_commands(local, at, ctx);
                        }
                        None => {
                            self.trace_rx(ctx, at, seq, receiver, || TraceEvent::Delivered {
                                at,
                                from: sender,
                                to: receiver,
                                seq,
                            });
                            let frame = &record.frame;
                            self.with_ctx(local, at, ctx, |protocol, c| {
                                protocol.on_frame(c, frame);
                            });
                            self.drain_commands(local, at, ctx);
                        }
                    }
                }
            }
        }
        receivers.clear();
        self.receiver_scratch = receivers;
    }

    fn trace_rx(
        &mut self,
        ctx: &EngineCtx<'_>,
        at: SimTime,
        seq: u64,
        receiver: NodeId,
        event: impl FnOnce() -> TraceEvent,
    ) {
        if ctx.tracing {
            self.trace_buf.push((
                (at.as_micros(), LANE_T_RX, seq, u64::from(receiver.0)),
                event(),
            ));
        }
    }

    fn with_ctx(
        &mut self,
        local: usize,
        at: SimTime,
        ctx: &EngineCtx<'_>,
        f: impl FnOnce(&mut P, &mut Context<'_>),
    ) {
        let state = &mut self.nodes[local];
        // Queue depth as of the end of this window's MAC phase — the
        // receive phase's view lags true MAC state by at most one
        // lookahead.
        let pending_frames = state.queue.len() + usize::from(state.transmitting);
        let mut c = Context {
            now: at,
            node: state.id,
            rng: &mut state.proto_rng,
            commands: &mut self.commands,
            next_timer_handle: &mut state.next_timer_handle,
            max_frame_bytes: ctx.radio.max_frame_bytes,
            pending_frames,
        };
        f(&mut state.protocol, &mut c);
    }

    fn drain_commands(&mut self, local: usize, at: SimTime, ctx: &EngineCtx<'_>) {
        while !self.commands.is_empty() {
            let mut batch = std::mem::take(&mut self.commands);
            for command in batch.drain(..) {
                match command {
                    Command::Send { node, payload } => {
                        debug_assert!(self.owns(ctx, node), "nodes only send as themselves");
                        let node_local = ctx.local(self.index, node);
                        // One MAC turnaround after the callback — the
                        // lookahead bound that makes windows independent.
                        let enqueue_at = at + ctx.lookahead;
                        self.push_mac(
                            enqueue_at,
                            LANE_M_ENQ,
                            node,
                            node_local,
                            MacKind::Enqueue { node, payload },
                        );
                    }
                    Command::SetTimer { node, at, timer } => {
                        self.rx_heap.push(RxEvent {
                            at,
                            lane: LANE_R_TIMER,
                            a: u64::from(node.0),
                            b: timer.handle.0,
                            kind: RxKind::Timer { node, timer },
                        });
                    }
                    Command::CancelTimer { handle } => {
                        self.nodes[local].cancelled.insert(handle);
                    }
                }
            }
            if self.commands.is_empty() {
                self.commands = batch;
            }
        }
    }
}

/// Grid cell of a position at the given pitch (the radio range).
fn strategy_cell_of(position: Position, cell_size: f64) -> (i64, i64) {
    (
        (position.x / cell_size).floor() as i64,
        (position.y / cell_size).floor() as i64,
    )
}

/// A policy assigning every node to one of `K` shard cores.
///
/// Placement is pure load balancing: the merged event stream is
/// invariant in it (the shard-count invariance tests pin this), so a
/// strategy is free to optimize for locality or balance without
/// touching correctness. The engine re-runs the strategy at the start
/// of a run whenever nodes were added or dynamics changed the
/// topology.
pub trait ShardStrategy: std::fmt::Debug + Send {
    /// A short stable name (for logs and bench metadata).
    fn name(&self) -> &'static str;

    /// Maps each node (indexed by id) to a shard in `0..shards`.
    /// `cell_size` is the interference-grid pitch (= radio range).
    fn assign(&self, topology: &Topology, cell_size: f64, shards: usize) -> Vec<u32>;
}

/// Hash the node's grid cell with SplitMix64 — the original placement.
/// Stateless and incremental (a node's shard never depends on the other
/// nodes), but adjacent cells usually land on different shards, so most
/// radio neighborhoods straddle a shard boundary and nearly every
/// record must be replicated to several ghosts.
#[derive(Debug, Default, Clone, Copy)]
pub struct GridHash;

fn grid_hash_shard(cell: (i64, i64), shards: usize) -> u32 {
    let mut state = (cell.0 as u64) ^ (cell.1 as u64).rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
    state = rand::splitmix64(&mut state);
    u32::try_from(state % shards as u64).expect("shard index fits u32")
}

impl ShardStrategy for GridHash {
    fn name(&self) -> &'static str {
        "grid-hash"
    }

    fn assign(&self, topology: &Topology, cell_size: f64, shards: usize) -> Vec<u32> {
        topology
            .node_ids()
            .map(|id| grid_hash_shard(strategy_cell_of(topology.position(id), cell_size), shards))
            .collect()
    }
}

/// Sort nodes by grid cell (column-major, node id as tiebreak) and cut
/// the order into `K` equal contiguous stripes. Neighboring cells share
/// a stripe except at the K − 1 cut lines, so cross-shard deliveries —
/// and ghost replication — concentrate on thin boundaries instead of
/// being scattered everywhere. The default strategy.
#[derive(Debug, Default, Clone, Copy)]
pub struct SpatialStripes;

impl ShardStrategy for SpatialStripes {
    fn name(&self) -> &'static str {
        "spatial-stripes"
    }

    fn assign(&self, topology: &Topology, cell_size: f64, shards: usize) -> Vec<u32> {
        let mut order: Vec<((i64, i64), NodeId)> = topology
            .node_ids()
            .map(|id| (strategy_cell_of(topology.position(id), cell_size), id))
            .collect();
        order.sort_unstable_by_key(|&(cell, id)| (cell, id.0));
        let n = order.len().max(1);
        let mut out = vec![0u32; order.len()];
        for (rank, (_, id)) in order.into_iter().enumerate() {
            out[id.index()] = u32::try_from(rank * shards / n).expect("shard index fits u32");
        }
        out
    }
}

/// Greedy bin packing by radio degree: nodes in descending degree
/// order (id as tiebreak), each to the shard with the smallest degree
/// sum so far. Evens out very uneven densities at the cost of ignoring
/// locality entirely — best when a few hotspot cells dominate the
/// receive-phase work.
#[derive(Debug, Default, Clone, Copy)]
pub struct DegreeBalanced;

impl ShardStrategy for DegreeBalanced {
    fn name(&self) -> &'static str {
        "degree-balanced"
    }

    fn assign(&self, topology: &Topology, _cell_size: f64, shards: usize) -> Vec<u32> {
        let mut order: Vec<(usize, NodeId)> = topology
            .node_ids()
            .map(|id| (topology.neighbors(id).count(), id))
            .collect();
        order.sort_unstable_by_key(|&(degree, id)| (Reverse(degree), id.0));
        let mut load = vec![0usize; shards];
        let mut out = vec![0u32; order.len()];
        for (degree, id) in order {
            let mut best = 0;
            for (shard, &l) in load.iter().enumerate().skip(1) {
                if l < load[best] {
                    best = shard;
                }
            }
            out[id.index()] = u32::try_from(best).expect("shard index fits u32");
            // A degree-0 node still costs its MAC events: weight 1.
            load[best] += degree.max(1);
        }
        out
    }
}

/// Configures and constructs a [`ShardedSim`].
///
/// Mirrors [`crate::sim::SimBuilder`], plus the sharding knobs:
/// [`shards`](Self::shards), [`lookahead`](Self::lookahead) (the MAC
/// turnaround delay that bounds the synchronization window), and
/// [`strategy`](Self::strategy) (node-to-shard placement).
#[derive(Debug)]
pub struct ShardedSimBuilder {
    seed: u64,
    radio: RadioConfig,
    mac: MacConfig,
    range: f64,
    faults: FaultModel,
    shards: usize,
    lookahead: SimDuration,
    strategy: Box<dyn ShardStrategy>,
}

impl ShardedSimBuilder {
    /// Starts a builder with the given seed and defaults: the paper's
    /// RPC radio, CSMA, 100 m range, one shard, 500 µs turnaround.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ShardedSimBuilder {
            seed,
            radio: RadioConfig::radiometrix_rpc(),
            mac: MacConfig::csma(),
            range: 100.0,
            faults: FaultModel::none(),
            shards: 1,
            lookahead: SimDuration::from_micros(500),
            strategy: Box::new(SpatialStripes),
        }
    }

    /// Sets the radio model.
    #[must_use]
    pub fn radio(mut self, radio: RadioConfig) -> Self {
        self.radio = radio;
        self
    }

    /// Sets the MAC configuration.
    #[must_use]
    pub fn mac(mut self, mac: MacConfig) -> Self {
        self.mac = mac;
        self
    }

    /// Sets the radio range in meters (also the interference grid cell
    /// size).
    #[must_use]
    pub fn range(mut self, range: f64) -> Self {
        self.range = range;
        self
    }

    /// Sets the fault model (default: [`FaultModel::none`]).
    #[must_use]
    pub fn faults(mut self, faults: FaultModel) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the shard count. Output is invariant in this knob; it only
    /// chooses how much of the work runs in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        self.shards = shards;
        self
    }

    /// Sets the node-to-shard placement strategy (default:
    /// [`SpatialStripes`]). Placement only affects load balance and
    /// ghost-replication volume, never output.
    #[must_use]
    pub fn strategy(mut self, strategy: Box<dyn ShardStrategy>) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the MAC turnaround delay (the conservative lookahead `L`).
    /// Larger values mean fewer barrier epochs but more latency between
    /// a protocol send and its MAC enqueue. Part of the model: changing
    /// it changes (deterministically) when frames hit the air.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead` is zero.
    #[must_use]
    pub fn lookahead(mut self, lookahead: SimDuration) -> Self {
        assert!(lookahead.as_micros() > 0, "lookahead must be positive");
        self.lookahead = lookahead;
        self
    }

    /// Builds the simulator; `factory` creates the protocol instance
    /// for each node added later.
    pub fn build<P, F>(self, factory: F) -> ShardedSim<P>
    where
        P: Protocol,
        F: FnMut(NodeId) -> P + 'static,
    {
        self.mac.validate();
        let cores = (0..self.shards)
            .map(|i| ShardCore::new(i, self.range))
            .collect();
        let mut sim = ShardedSim {
            now: SimTime::ZERO,
            seed: self.seed,
            radio: self.radio,
            mac: self.mac,
            faults: self.faults,
            lookahead: self.lookahead,
            master: Topology::new(self.range),
            cores,
            owner: Vec::new(),
            air: AirView::new(self.range),
            master_dyn: BinaryHeap::new(),
            next_dyn_idx: 0,
            next_seq: 0,
            frames_sent: 0,
            factory: Box::new(factory),
            tracer: None,
            obs: None,
            trace_main: Vec::new(),
            merge_scratch: Vec::new(),
            force_serial: false,
            force_threads: false,
            strategy: self.strategy,
            placement_dirty: false,
            interest_valid: false,
            ghosts_valid: false,
            windows_executed: 0,
        };
        let churn: Vec<ChurnEvent> = sim.faults.churn().to_vec();
        for event in churn {
            sim.schedule_set_alive(event.at, event.node, event.alive);
        }
        sim
    }

    /// Builds the simulator pre-populated with every node of `topology`
    /// (positions and liveness), creating protocols via `factory`.
    ///
    /// Equivalent to adding each node individually but O(topology) —
    /// the replicas clone the finished adjacency instead of relinking
    /// per added node, which matters at 10k nodes.
    pub fn build_with_topology<P, F>(self, topology: &Topology, factory: F) -> ShardedSim<P>
    where
        P: Protocol,
        F: FnMut(NodeId) -> P + 'static,
    {
        let mut sim = self.build(factory);
        sim.master = topology.clone();
        for core in &mut sim.cores {
            core.topo_mac = topology.clone();
            core.topo_rx = topology.clone();
        }
        let ids: Vec<NodeId> = topology.node_ids().collect();
        for id in ids {
            let protocol = (sim.factory)(id);
            sim.admit(id, protocol);
        }
        sim
    }
}

/// The sharded simulation: shard cores, the shared air view, and the
/// epoch-barrier state. See the [module docs](self) for the execution
/// model.
pub struct ShardedSim<P> {
    now: SimTime,
    seed: u64,
    radio: RadioConfig,
    mac: MacConfig,
    faults: FaultModel,
    lookahead: SimDuration,
    /// Authoritative topology for the public accessor and shard
    /// rebalancing; dynamics are applied to it at epoch barriers.
    master: Topology,
    cores: Vec<ShardCore<P>>,
    /// `node -> (shard, local index)`.
    owner: Vec<(u32, u32)>,
    air: AirView,
    master_dyn: BinaryHeap<MasterDyn>,
    next_dyn_idx: u64,
    next_seq: u64,
    /// Global transmission counter (the only MediumStats field counted
    /// at the barrier rather than per shard).
    frames_sent: u64,
    factory: Box<dyn FnMut(NodeId) -> P>,
    tracer: Option<Tracer>,
    obs: Option<NetsimObs>,
    trace_main: Vec<(TraceKey, TraceEvent)>,
    merge_scratch: Vec<PendingTx>,
    force_serial: bool,
    force_threads: bool,
    strategy: Box<dyn ShardStrategy>,
    /// Whether node placement may be stale (nodes added or dynamics
    /// applied since the last rebalance).
    placement_dirty: bool,
    /// Whether the per-shard interest refcounts match the current
    /// placement and master positions. Scheduled moves keep them valid
    /// incrementally; node adds and ownership rebalances invalidate
    /// them (full rebuild at the next run).
    interest_valid: bool,
    /// Whether the per-shard ghost replicas hold exactly the retained
    /// records their interest sets select. Invalidated together with
    /// the interest sets.
    ghosts_valid: bool,
    /// Windows actually executed (a window runs only when some shard
    /// has an event in it — fully idle stretches are skipped in O(1)).
    windows_executed: u64,
}

impl<P> core::fmt::Debug for ShardedSim<P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShardedSim")
            .field("now", &self.now)
            .field("shards", &self.cores.len())
            .field("nodes", &self.owner.len())
            .finish_non_exhaustive()
    }
}

impl<P: Protocol> ShardedSim<P> {
    /// The grid cell owning shard for a position. Placement only
    /// affects load balance, never output.
    fn shard_of(&self, position: Position) -> usize {
        if self.cores.len() == 1 {
            return 0;
        }
        let cell = self.air.cell_of(position);
        let mut state = (cell.0 as u64) ^ (cell.1 as u64).rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
        state = rand::splitmix64(&mut state);
        usize::try_from(state % self.cores.len() as u64).expect("shard index fits usize")
    }

    /// Adds a node at `position` using the builder's factory; its
    /// `on_start` runs at the current time.
    pub fn add_node_at(&mut self, position: Position) -> NodeId {
        let id = self.master.add(position);
        for core in &mut self.cores {
            core.topo_mac.add(position);
            core.topo_rx.add(position);
        }
        let protocol = (self.factory)(id);
        self.admit(id, protocol)
    }

    /// Adds a node with an explicitly constructed protocol instance.
    pub fn add_node_with(&mut self, position: Position, protocol: P) -> NodeId {
        let id = self.master.add(position);
        for core in &mut self.cores {
            core.topo_mac.add(position);
            core.topo_rx.add(position);
        }
        self.admit(id, protocol)
    }

    /// Registers an already-present topology node with the engine.
    fn admit(&mut self, id: NodeId, protocol: P) -> NodeId {
        debug_assert_eq!(id.index(), self.owner.len());
        self.placement_dirty = true;
        self.interest_valid = false;
        let shard = self.shard_of(self.master.position(id));
        let local = self.cores[shard].nodes.len() as u32;
        self.owner.push((shard as u32, local));
        self.air.add_node();
        self.cores[shard]
            .nodes
            .push(LocalNode::new(self.seed, id, protocol));
        let at = self.now;
        self.cores[shard].rx_heap.push(RxEvent {
            at,
            lane: LANE_R_START,
            a: u64::from(id.0),
            b: 0,
            kind: RxKind::Start { node: id },
        });
        id
    }

    /// Schedules a node to move at a future time (network dynamics).
    pub fn schedule_move(&mut self, at: SimTime, node: NodeId, to: Position) {
        self.push_dynamic(at, DynAction::Move { node, to });
    }

    /// Schedules a node death (`false`) or rebirth (`true`).
    pub fn schedule_set_alive(&mut self, at: SimTime, node: NodeId, alive: bool) {
        self.push_dynamic(at, DynAction::SetAlive { node, alive });
    }

    fn push_dynamic(&mut self, at: SimTime, action: DynAction) {
        let idx = self.next_dyn_idx;
        self.next_dyn_idx += 1;
        self.master_dyn.push(MasterDyn { at, idx, action });
        for core in &mut self.cores {
            core.mac_heap.push(MacEvent {
                at,
                lane: LANE_M_DYN,
                a: idx,
                b: 0,
                kind: MacKind::Dynamics(action),
            });
            core.rx_heap.push(RxEvent {
                at,
                lane: LANE_R_DYN,
                a: idx,
                b: 0,
                kind: RxKind::Dynamics { idx, action },
            });
        }
    }

    /// Sets (or clears) a receiver duty cycle on a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    pub fn set_duty_cycle(&mut self, node: NodeId, duty_cycle: Option<DutyCycle>) {
        let (shard, local) = self.owner[node.index()];
        self.cores[shard as usize].nodes[local as usize].duty_cycle = duty_cycle;
    }

    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The radio model in use.
    #[must_use]
    pub fn radio(&self) -> &RadioConfig {
        &self.radio
    }

    /// The topology (positions, liveness, range).
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.master
    }

    /// The shard count.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.cores.len()
    }

    /// The conservative lookahead (MAC turnaround delay).
    #[must_use]
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// How many `[T, T+L)` windows the engine actually executed. A
    /// window runs only when some shard has a pending event in it, so
    /// fully idle stretches of simulated time cost zero windows — the
    /// O(active) contract the scaling regression tests pin down.
    #[must_use]
    pub fn windows_executed(&self) -> u64 {
        self.windows_executed
    }

    /// How many executed windows individual shards fast-forwarded
    /// through without dispatching any event (summed over shards):
    /// the per-shard half of the O(active) contract — a shard with no
    /// queued MAC work and no pending receive events skips the window
    /// instead of walking it.
    #[must_use]
    pub fn shard_windows_skipped(&self) -> u64 {
        self.cores.iter().map(|c| c.windows_skipped).sum()
    }

    /// Medium-level counters, summed across shards.
    #[must_use]
    pub fn stats(&self) -> MediumStats {
        let mut total = MediumStats {
            frames_sent: self.frames_sent,
            ..MediumStats::default()
        };
        for core in &self.cores {
            let s = &core.stats;
            total.deliveries += s.deliveries;
            total.rf_collisions += s.rf_collisions;
            total.half_duplex_losses += s.half_duplex_losses;
            total.random_losses += s.random_losses;
            total.sleep_misses += s.sleep_misses;
            total.fault_erasures += s.fault_erasures;
            total.partition_losses += s.partition_losses;
            total.corrupted_deliveries += s.corrupted_deliveries;
            total.flipped_bits += s.flipped_bits;
        }
        total
    }

    /// Dynamic-Frame Aloha counters, summed across shards (all zero
    /// unless the MAC runs DFA).
    #[must_use]
    pub fn dfa_stats(&self) -> DfaStats {
        let mut total = DfaStats::default();
        for core in &self.cores {
            total.merge(&core.dfa);
        }
        total
    }

    /// Number of nodes added so far.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.owner.len()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.owner.len() as u32).map(NodeId)
    }

    fn local_node(&self, node: NodeId) -> &LocalNode<P> {
        let (shard, local) = self.owner[node.index()];
        &self.cores[shard as usize].nodes[local as usize]
    }

    /// The protocol instance of a node, for post-run inspection.
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    #[must_use]
    pub fn protocol(&self, node: NodeId) -> &P {
        &self.local_node(node).protocol
    }

    /// Mutable access to a node's protocol.
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    pub fn protocol_mut(&mut self, node: NodeId) -> &mut P {
        let (shard, local) = self.owner[node.index()];
        &mut self.cores[shard as usize].nodes[local as usize].protocol
    }

    /// A node's energy meter.
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    #[must_use]
    pub fn meter(&self, node: NodeId) -> &EnergyMeter {
        &self.local_node(node).meter
    }

    /// Network-wide energy meter (sum over nodes).
    #[must_use]
    pub fn total_meter(&self) -> EnergyMeter {
        let mut total = EnergyMeter::new();
        for core in &self.cores {
            for node in &core.nodes {
                total.merge(&node.meter);
            }
        }
        total
    }

    /// How long a node's receiver has been awake so far.
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    #[must_use]
    pub fn awake_micros(&self, node: NodeId) -> u64 {
        let elapsed = self.now.as_micros();
        match self.local_node(node).duty_cycle {
            Some(duty) => (elapsed as f64 * duty.on_fraction()) as u64,
            None => elapsed,
        }
    }

    /// A node's total radio energy so far in nanojoules, including idle
    /// listening.
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    #[must_use]
    pub fn energy_nj(&self, node: NodeId) -> f64 {
        self.local_node(node)
            .meter
            .total_energy_with_idle_nj(&self.radio.energy, self.awake_micros(node))
    }

    /// Enables event tracing with a bounded ring buffer of `capacity`
    /// events. Re-enabling resets the buffer.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Some(Tracer::new(capacity));
    }

    /// The tracer, if enabled.
    #[must_use]
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Attaches an observability handle. Observability implies serial
    /// window execution (metric recording order must be deterministic);
    /// output is unchanged either way.
    pub fn enable_obs(&mut self, obs: &Obs) {
        self.obs = obs.is_enabled().then(|| NetsimObs::new(obs));
    }

    /// Forces the single-threaded window loop even for `shards > 1`.
    /// The windowed algorithm is identical either way — this is a
    /// validation/debugging knob (and what `enable_obs` implies).
    pub fn set_force_serial(&mut self, force: bool) {
        self.force_serial = force;
    }

    /// Forces worker threads for `shards > 1` even when the engine's
    /// cost model (machine parallelism, per-shard node count) would run
    /// the windows inline. A validation/debugging knob; output is
    /// identical either way. [`Self::set_force_serial`] wins if both
    /// are set.
    pub fn set_force_threads(&mut self, force: bool) {
        self.force_threads = force;
    }

    /// Whether the next [`Self::run_until`] would execute windows on
    /// worker threads. False for single-shard sims, attached
    /// observability, forced-serial mode, single-core machines, or
    /// topologies too small to amortize the per-window barrier traffic
    /// (< [`MIN_NODES_PER_SHARD`] owned nodes per shard) — the windowed
    /// algorithm then runs inline, with identical output.
    #[must_use]
    pub fn uses_worker_threads(&self) -> bool {
        if self.cores.len() <= 1 || self.obs.is_some() || self.force_serial {
            return false;
        }
        if self.force_threads {
            return true;
        }
        std::thread::available_parallelism().map_or(1, usize::from) > 1
            && self.owner.len() >= self.cores.len() * MIN_NODES_PER_SHARD
    }

    /// Re-buckets node ownership via the placement strategy, moving
    /// node state and node-owned events between shards. Called at the
    /// start of every run (and skipped unless nodes were added or
    /// dynamics ran since the last rebalance) so churn-heavy workloads
    /// keep their balance. Placement never affects output, so this is
    /// purely a load-balance step.
    fn rebalance_ownership(&mut self) {
        if self.cores.len() <= 1 || self.owner.is_empty() || !self.placement_dirty {
            return;
        }
        self.placement_dirty = false;
        let desired: Vec<u32> =
            self.strategy
                .assign(&self.master, self.air.cell_size, self.cores.len());
        debug_assert_eq!(desired.len(), self.owner.len());
        debug_assert!(desired.iter().all(|&s| (s as usize) < self.cores.len()));
        if desired
            .iter()
            .zip(&self.owner)
            .all(|(want, have)| *want == have.0)
        {
            return;
        }
        // Ownership actually moves: interest refcounts and ghost
        // replicas reflect the old placement, so both rebuild at the
        // start of the run.
        self.interest_valid = false;
        let mut slots: Vec<Option<LocalNode<P>>> = (0..self.owner.len()).map(|_| None).collect();
        let mut mac_orphans: Vec<MacEvent> = Vec::new();
        let mut rx_orphans: Vec<RxEvent> = Vec::new();
        // Pending delivery events may exist on only the cores that were
        // interested under the OLD placement; dedup them by sequence
        // number and re-broadcast below so the new owner of every
        // receiver sees them. (The next barrier routes fresh ones by
        // the new interest sets.)
        let mut pending_delivers: HashMap<u64, (SimTime, NodeId)> = HashMap::new();
        for core in &mut self.cores {
            for node in core.nodes.drain(..) {
                let index = node.id.index();
                slots[index] = Some(node);
            }
            // Node-owned events follow their node; dynamics already
            // exist once per shard and stay put.
            let events: Vec<MacEvent> = core.mac_heap.drain().collect();
            for ev in events {
                if ev.node().is_some() {
                    mac_orphans.push(ev);
                } else {
                    core.mac_heap.push(ev);
                }
            }
            let events: Vec<RxEvent> = core.rx_heap.drain().collect();
            for ev in events {
                if ev.node().is_some() {
                    rx_orphans.push(ev);
                } else if let RxKind::Deliver { seq, sender } = ev.kind {
                    pending_delivers.insert(seq, (ev.at, sender));
                } else {
                    core.rx_heap.push(ev);
                }
            }
        }
        for (index, slot) in slots.into_iter().enumerate() {
            let node = slot.expect("every node drained into a slot");
            let shard = desired[index] as usize;
            self.owner[index] = (desired[index], self.cores[shard].nodes.len() as u32);
            self.cores[shard].nodes.push(node);
        }
        for ev in mac_orphans {
            let node = ev.node().expect("partitioned as node-owned");
            self.cores[self.owner[node.index()].0 as usize]
                .mac_heap
                .push(ev);
        }
        for ev in rx_orphans {
            let node = ev.node().expect("partitioned as node-owned");
            self.cores[self.owner[node.index()].0 as usize]
                .rx_heap
                .push(ev);
        }
        for (seq, (at, sender)) in pending_delivers {
            for core in &mut self.cores {
                core.rx_heap.push(RxEvent {
                    at,
                    lane: LANE_R_DELIVER,
                    a: seq,
                    b: 0,
                    kind: RxKind::Deliver { seq, sender },
                });
            }
        }
    }

    /// Merges buffered trace events (main + per-shard) into the tracer
    /// in canonical key order.
    fn flush_traces(&mut self) {
        let Some(tracer) = self.tracer.as_mut() else {
            for core in &mut self.cores {
                core.trace_buf.clear();
            }
            self.trace_main.clear();
            return;
        };
        let mut all = std::mem::take(&mut self.trace_main);
        for core in &mut self.cores {
            all.append(&mut core.trace_buf);
        }
        all.sort_unstable_by_key(|(key, _)| *key);
        for (_, event) in all.drain(..) {
            tracer.record(event);
        }
        self.trace_main = all;
    }

    /// Rebuilds every shard's interest set from scratch: the grid cells
    /// within one ring of any owned node, refcounted per contributing
    /// node. A record whose origin cell is outside a shard's interest
    /// can neither be received by nor interfere at any node the shard
    /// owns (cell size = radio range), so barrier fan-out and ghost
    /// replication are filtered by it. Only placement changes (node
    /// adds, ownership rebalances) pay this full rebuild; scheduled
    /// moves patch the refcounts incrementally as they execute.
    fn build_interest(&mut self) {
        for core in &mut self.cores {
            core.interest.clear();
        }
        for index in 0..self.owner.len() {
            let node = NodeId(index as u32);
            let shard = self.owner[index].0 as usize;
            let (cx, cy) = self.air.cell_of(self.master.position(node));
            for dx in -1..=1 {
                for dy in -1..=1 {
                    *self.cores[shard]
                        .interest
                        .entry((cx + dx, cy + dy))
                        .or_insert(0) += 1;
                }
            }
        }
    }

    /// Rebuilds every shard's ghost replica from the retained global
    /// records, filtered by the (freshly rebuilt) interest sets. Paid
    /// only when placement changed; steady-state windows maintain the
    /// replicas incrementally at the barrier and prune them by airtime
    /// horizon.
    fn rebuild_ghosts(&mut self) {
        for core in &mut self.cores {
            core.ghost.clear(self.air.cell_size);
        }
        for record in &self.air.records {
            for core in &mut self.cores {
                if core.interest.contains_key(&record.cell) {
                    core.ghost.insert(record);
                }
            }
        }
    }
}

/// The earliest pending event across all shards and both phases.
fn global_min<P: Protocol>(cores: &[&mut ShardCore<P>]) -> Option<SimTime> {
    let mut min: Option<SimTime> = None;
    for core in cores {
        for at in core
            .mac_heap
            .peek()
            .map(|e| e.at)
            .into_iter()
            .chain(core.rx_heap.peek().map(|e| e.at))
        {
            min = Some(min.map_or(at, |m| m.min(at)));
        }
    }
    min
}

/// End of the synchronization window containing `at`: windows tile the
/// timeline at multiples of the lookahead, so the window start (and
/// therefore the whole window sequence) depends only on the global event
/// set — never on the shard count.
fn window_end(at: SimTime, lookahead: SimDuration) -> SimTime {
    let l = lookahead.as_micros().max(1);
    SimTime::from_micros((at.as_micros() / l + 1) * l)
}

/// How epoch-barrier products (delivery events, ghost records) fan out
/// across shard cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FanOut {
    /// Every core gets every delivery event and (when ghosts are on)
    /// every air record. Only used for single-shard runs, where there
    /// is nothing to filter.
    Broadcast,
    /// Only cores whose interest set contains the record's origin grid
    /// cell. The cell size equals the radio range, so every receiver
    /// and every interferable pair sits within one cell ring of its
    /// counterpart, and a delivery event routed to a non-interested
    /// core would be a no-op (it owns no neighbor of the sender).
    /// Scheduled dynamics stay safe because every move patches the
    /// owning shard's interest refcounts as it executes and backfills
    /// the in-flight records of any cell the set gains — see
    /// [`apply_master_dynamics`].
    Interest,
}

/// Applies master-topology dynamics scheduled inside the window
/// (`at < t_end`) at the window's *start*, delta-routing their
/// consequences when interest routing is on:
///
/// - a move patches the owning shard's ±1-ring interest refcounts —
///   the new ring's increments land immediately (cells going 0→1 get a
///   backfill of their in-flight records), while the old ring's
///   decrements are deferred to just after this window's barrier, so
///   the barrier routes this window's publications with the union of
///   pre- and post-move interest (conservative, hence safe for frames
///   that start before and end after the move);
/// - the mover's own in-flight records are routed to every shard
///   interested in the destination cell, because a relocating sender
///   keeps its records indexed under their origin cells.
///
/// Returns the deferred interest decrements, to be applied by
/// [`apply_interest_decrements`] after the window's barrier.
#[allow(clippy::too_many_arguments)]
fn apply_master_dynamics<P: Protocol>(
    master_dyn: &mut BinaryHeap<MasterDyn>,
    master: &mut Topology,
    cores: &mut [&mut ShardCore<P>],
    air: &AirView,
    owner: &[(u32, u32)],
    t_end: SimTime,
    deadline: SimTime,
    interest_routing: bool,
) -> Vec<(usize, (i64, i64))> {
    let mut deferred: Vec<(usize, (i64, i64))> = Vec::new();
    while let Some(next) = master_dyn.peek() {
        if next.at >= t_end || next.at > deadline {
            break;
        }
        let dynamic = master_dyn.pop().expect("peeked above");
        match dynamic.action {
            DynAction::Move { node, to } => {
                let (old_cell, new_cell) = master.set_position_tracked(node, to);
                if !interest_routing || old_cell == new_cell {
                    continue;
                }
                let shard = owner[node.index()].0 as usize;
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        deferred.push((shard, (old_cell.0 + dx, old_cell.1 + dy)));
                    }
                }
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        let cell = (new_cell.0 + dx, new_cell.1 + dy);
                        let count = cores[shard].interest.entry(cell).or_insert(0);
                        *count += 1;
                        if *count == 1 {
                            backfill_gained_cell(cores[shard], air, master, cell, dynamic.at);
                        }
                    }
                }
                route_mover_records(cores, air, node, new_cell, dynamic.at);
            }
            DynAction::SetAlive { node, alive } => master.set_alive(node, alive),
        }
    }
    deferred
}

/// Routes the retained records a shard newly needs because its
/// interest set gained `cell`: records *originating* in the cell, plus
/// in-flight records of senders *currently located* in it (a sender
/// that relocated mid-flight keeps its record indexed under the origin
/// cell, so the origin scan alone would miss it). Each record arrives
/// with its pending delivery event; records already delivered before
/// the move instant are skipped — they were judged at the pre-move
/// position, which the pre-move interest covered.
fn backfill_gained_cell<P: Protocol>(
    core: &mut ShardCore<P>,
    air: &AirView,
    master: &Topology,
    cell: (i64, i64),
    since: SimTime,
) {
    if let Some(seqs) = air.cells.get(&cell) {
        for &seq in seqs {
            ghost_route(core, air, seq, since);
        }
    }
    for node in master.nodes_in(cell) {
        if let Some(seqs) = air.by_node.get(node.index()) {
            for &seq in seqs {
                ghost_route(core, air, seq, since);
            }
        }
    }
}

/// Routes the mover's in-flight records to every shard interested in
/// its destination cell (receivers near the destination can hear the
/// remainder of a transmission begun elsewhere).
fn route_mover_records<P: Protocol>(
    cores: &mut [&mut ShardCore<P>],
    air: &AirView,
    node: NodeId,
    new_cell: (i64, i64),
    since: SimTime,
) {
    let Some(seqs) = air.by_node.get(node.index()) else {
        return;
    };
    if seqs.is_empty() {
        return;
    }
    let seqs: Vec<u64> = seqs.iter().copied().collect();
    for core in cores.iter_mut() {
        if !core.interest.contains_key(&new_cell) {
            continue;
        }
        for &seq in &seqs {
            ghost_route(core, air, seq, since);
        }
    }
}

/// Copies one retained record into a shard's ghost replica together
/// with its pending delivery event, unless the record already ended
/// before `since` or the replica already holds it (ghost membership
/// and the pending event always travel together, so the membership
/// test also dedups the event).
fn ghost_route<P: Protocol>(core: &mut ShardCore<P>, air: &AirView, seq: u64, since: SimTime) {
    let record = air.get(seq).expect("indexed record retained");
    if record.end < since || core.ghost.contains(seq) {
        return;
    }
    core.ghost.insert(record);
    core.rx_heap.push(RxEvent {
        at: record.end,
        lane: LANE_R_DELIVER,
        a: seq,
        b: 0,
        kind: RxKind::Deliver {
            seq,
            sender: record.sender,
        },
    });
}

/// Applies the interest decrements a window's dynamics deferred (see
/// [`apply_master_dynamics`]), dropping cells whose refcount reaches
/// zero. Runs after the window's barrier has routed with the
/// conservative union.
fn apply_interest_decrements<P: Protocol>(
    cores: &mut [&mut ShardCore<P>],
    deferred: &[(usize, (i64, i64))],
) {
    for &(shard, cell) in deferred {
        match cores[shard].interest.get_mut(&cell) {
            Some(count) if *count > 1 => *count -= 1,
            Some(_) => {
                cores[shard].interest.remove(&cell);
            }
            None => debug_assert!(false, "decrement of an untracked interest cell"),
        }
    }
}

/// The globally ordered MAC phase of carrier-sense runs: a cross-shard
/// merge in global event order, so carrier sense observes exactly the
/// serial order (zero lookahead).
///
/// The merge keeps one cursor per shard in a min-heap. `dispatch_mac`
/// only ever pushes follow-up events onto the shard it ran on, so after
/// each pop only that one cursor needs refreshing — O(log K) per event
/// instead of an O(K) peek scan.
/// Min-heap entry in the k-way merge: (event sort key, shard index).
type MergeCursor = Reverse<((SimTime, u8, u64, u64), usize)>;

fn run_phase1_csma<P: Protocol>(
    cores: &mut [&mut ShardCore<P>],
    air: &mut AirView,
    next_seq: &mut u64,
    ctx: &EngineCtx<'_>,
    t_end: SimTime,
    obs: Option<&NetsimObs>,
) {
    let in_window = |ev: &MacEvent| ev.at < t_end && ev.at <= ctx.deadline;
    let mut cursors: BinaryHeap<MergeCursor> = BinaryHeap::with_capacity(cores.len());
    for (i, core) in cores.iter_mut().enumerate() {
        core.mac_was_idle = true;
        if let Some(ev) = core.mac_heap.peek() {
            if in_window(ev) {
                core.mac_was_idle = false;
                cursors.push(Reverse((ev.key(), i)));
            }
        }
    }
    while let Some(Reverse((_, i))) = cursors.pop() {
        let ev = cores[i]
            .mac_heap
            .pop()
            .expect("cursor tracks a peeked event");
        cores[i].dispatch_mac(ev, ctx, Some(CsmaAir { air, next_seq }), obs);
        if let Some(ev) = cores[i].mac_heap.peek() {
            if in_window(ev) {
                cursors.push(Reverse((ev.key(), i)));
            }
        }
    }
}

/// The epoch barrier ("barrier A"): merge per-shard outboxes in
/// canonical order, assign global sequence numbers, record stats,
/// traces, and metrics, publish air records, and route delivery events
/// (and, on threaded runs, ghost records) to the shards that can
/// possibly need them.
#[allow(clippy::too_many_arguments)]
fn assign_and_broadcast<P: Protocol>(
    cores: &mut [&mut ShardCore<P>],
    air: &mut AirView,
    next_seq: &mut u64,
    frames_sent: &mut u64,
    trace_main: &mut Vec<(TraceKey, TraceEvent)>,
    merge: &mut Vec<PendingTx>,
    mut obs: Option<&mut NetsimObs>,
    owner: &[(u32, u32)],
    tracing: bool,
    tx_nj_per_bit: f64,
    fan_out: FanOut,
    ghosts: bool,
    dfa: bool,
) {
    merge.clear();
    let mut have_span_ends = false;
    for core in cores.iter_mut() {
        merge.append(&mut core.outbox);
        have_span_ends |= !core.span_ends.is_empty();
    }
    // Quiet windows (no transmissions started, nothing to resolve) skip
    // the whole barrier body.
    if merge.is_empty() && !have_span_ends {
        return;
    }
    merge.sort_unstable_by_key(|p| (p.start, p.node.0, p.tx_idx));
    for p in merge.drain(..) {
        let seq = match p.seq {
            Some(seq) => seq,
            None => {
                let seq = *next_seq;
                *next_seq += 1;
                let (shard, local) = owner[p.node.index()];
                cores[shard as usize].nodes[local as usize]
                    .assigned
                    .push_back((p.tx_idx, seq));
                seq
            }
        };
        *frames_sent += 1;
        if tracing {
            trace_main.push((
                (p.start.as_micros(), LANE_T_TX, seq, 0),
                TraceEvent::TxStart {
                    at: p.start,
                    node: p.node,
                    seq,
                    bits: p.bits_on_air,
                },
            ));
        }
        if let Some(o) = obs.as_deref_mut() {
            o.frames_sent.inc();
            o.tx_bits.add(p.bits_on_air);
            o.airtime_micros.add(p.airtime_micros);
            o.energy_tx_nj.shift(p.bits_on_air as f64 * tx_nj_per_bit);
            o.tx_span_start(seq, p.start.as_micros());
        }
        if let Some(frame) = p.frame {
            let cell = air.cell_of(p.pos);
            air.insert(AirRecord {
                seq,
                sender: p.node,
                start: p.start,
                end: p.end,
                bits_on_air: p.bits_on_air,
                frame,
                cell,
                ended: false,
            });
        }
        // CSMA transmissions were inserted during the MAC phase, ALOHA
        // ones just above — either way the record is published now.
        let record = air.get(seq).expect("record published at this barrier");
        for core in cores.iter_mut() {
            if fan_out == FanOut::Interest && !core.interest.contains_key(&record.cell) {
                continue;
            }
            if ghosts {
                core.ghost.insert(record);
            }
            core.rx_heap.push(RxEvent {
                at: p.end,
                lane: LANE_R_DELIVER,
                a: seq,
                b: 0,
                kind: RxKind::Deliver {
                    seq,
                    sender: p.node,
                },
            });
        }
        if dfa {
            // Sender-side slot feedback, routed only to the sender's
            // owner shard. Its ghost always holds the record: the
            // owner's interest set covers the sender's own cell (the
            // window's conservative pre-move ∪ post-move union when the
            // sender relocated mid-window).
            let (shard, _) = owner[p.node.index()];
            cores[shard as usize].rx_heap.push(RxEvent {
                at: p.end,
                lane: LANE_R_FEEDBACK,
                a: seq,
                b: 0,
                kind: RxKind::DfaFeedback {
                    seq,
                    sender: p.node,
                },
            });
        }
    }
    // Airtime spans (observability only): resolve ends buffered during
    // the MAC phase, now that every same-window start has its number.
    if let Some(o) = obs {
        let mut pending: Vec<SpanEnd> = Vec::new();
        for core in cores.iter_mut() {
            pending.append(&mut core.span_ends);
        }
        if pending.is_empty() {
            return;
        }
        let mut ends: Vec<(u64, u64)> = Vec::with_capacity(pending.len());
        for end in pending {
            match end {
                SpanEnd::Known { at_micros, seq } => ends.push((at_micros, seq)),
                SpanEnd::Pending {
                    at_micros,
                    node,
                    tx_idx,
                } => {
                    let (shard, local) = owner[node.index()];
                    let seq = cores[shard as usize].nodes[local as usize]
                        .take_assigned(tx_idx)
                        .expect("same-window transmission numbered at this barrier");
                    ends.push((at_micros, seq));
                }
            }
        }
        ends.sort_unstable();
        for (at_micros, seq) in ends {
            o.tx_span_end(seq, at_micros);
        }
    }
}

impl<P: Protocol + Send> ShardedSim<P> {
    /// Runs all events up to and including `deadline`, then advances
    /// the clock to it.
    ///
    /// Multi-shard runs execute windows on scoped worker threads unless
    /// observability is attached (or [`Self::set_force_serial`] was
    /// called); output is identical either way.
    ///
    /// # Panics
    ///
    /// Propagates panics from protocol callbacks (on worker threads,
    /// re-raised on the caller).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.rebalance_ownership();
        // Multi-shard runs always route barrier products by interest:
        // scheduled dynamics patch the refcounted sets incrementally as
        // they execute (see `apply_master_dynamics`), so only placement
        // changes pay a full rebuild. The ghost replicas are likewise
        // maintained across runs — serial multi-shard windows keep them
        // warm so an engine switch (threads toggling on or off between
        // calls) never observes a stale replica.
        let fan_out = if self.cores.len() > 1 {
            if !self.interest_valid {
                self.build_interest();
                self.interest_valid = true;
                self.ghosts_valid = false;
            }
            if !self.ghosts_valid {
                self.rebuild_ghosts();
                self.ghosts_valid = true;
            }
            FanOut::Interest
        } else {
            FanOut::Broadcast
        };
        let dyn_before = self.master_dyn.len();
        if self.uses_worker_threads() {
            self.run_windows_parallel(deadline, fan_out);
        } else {
            self.run_windows_serial(deadline, fan_out);
        }
        if self.master_dyn.len() != dyn_before {
            self.placement_dirty = true;
        }
        self.now = self.now.max(deadline);
        self.flush_traces();
    }

    fn run_windows_serial(&mut self, deadline: SimTime, fan_out: FanOut) {
        let ShardedSim {
            cores,
            air,
            next_seq,
            frames_sent,
            trace_main,
            merge_scratch,
            obs,
            tracer,
            owner,
            radio,
            mac,
            faults,
            lookahead,
            master,
            master_dyn,
            windows_executed,
            ..
        } = self;
        let ctx = EngineCtx {
            radio,
            mac,
            faults,
            lookahead: *lookahead,
            tracing: tracer.is_some(),
            deadline,
            owner,
        };
        let slack = radio.airtime(radio.max_frame_bytes as u32 * 8) * 2;
        let mut refs: Vec<&mut ShardCore<P>> = cores.iter_mut().collect();
        let multi = refs.len() > 1;
        loop {
            let t_end = match global_min(&refs) {
                Some(min) if min <= deadline => window_end(min, *lookahead),
                _ => break,
            };
            *windows_executed += 1;
            // Window start: master dynamics scheduled inside this
            // window execute now, patching interest refcounts and
            // backfilling ghosts as they go. Nothing in the window body
            // reads the master topology, so start-of-window application
            // is equivalent to the phases' own in-order replays.
            let deferred = apply_master_dynamics(
                master_dyn, master, &mut refs, air, owner, t_end, deadline, multi,
            );
            if mac.carrier_sense {
                run_phase1_csma(&mut refs, air, next_seq, &ctx, t_end, obs.as_ref());
            } else {
                for core in refs.iter_mut() {
                    core.mac_was_idle = core.mac_idle(t_end, deadline);
                    if !core.mac_was_idle {
                        core.run_phase1(&ctx, t_end, obs.as_ref());
                    }
                }
            }
            assign_and_broadcast(
                &mut refs,
                air,
                next_seq,
                frames_sent,
                trace_main,
                merge_scratch,
                obs.as_mut(),
                owner,
                ctx.tracing,
                radio.energy.tx_nj_per_bit,
                fan_out,
                multi,
                mac.dfa_config().is_some(),
            );
            apply_interest_decrements(&mut refs, &deferred);
            let horizon = SimTime::from_micros(t_end.as_micros().saturating_sub(slack.as_micros()));
            for core in refs.iter_mut() {
                let rx_was_idle = core.rx_idle(t_end, deadline);
                if !rx_was_idle {
                    core.run_phase2(&ctx, t_end, air, obs.as_ref());
                }
                if core.mac_was_idle && rx_was_idle {
                    core.windows_skipped += 1;
                }
                if multi {
                    core.ghost.prune(horizon);
                }
            }
            // Barrier B: air garbage collection (master dynamics moved
            // to the window start, where their routing is delta-based).
            air.prune(horizon);
        }
    }

    fn run_windows_parallel(&mut self, deadline: SimTime, fan_out: FanOut) {
        let shards = self.cores.len();
        // The ghost replicas are maintained across runs (and across
        // serial/parallel engine switches) — `run_until` rebuilt them
        // already if placement changed, so nothing to do here.
        let ShardedSim {
            cores,
            air,
            next_seq,
            frames_sent,
            trace_main,
            merge_scratch,
            master,
            master_dyn,
            owner,
            radio,
            mac,
            faults,
            lookahead,
            tracer,
            windows_executed,
            ..
        } = self;
        let ctx = EngineCtx {
            radio,
            mac,
            faults,
            lookahead: *lookahead,
            tracing: tracer.is_some(),
            deadline,
            owner,
        };
        let csma = mac.carrier_sense;
        let cells: Vec<Mutex<&mut ShardCore<P>>> = cores.iter_mut().map(Mutex::new).collect();
        // Four rendezvous points per window: release workers into the
        // MAC phase, MAC phase done, merge barrier done (ghosts are
        // up to date), receive phase done. The global air view stays on
        // this thread — workers judge against their ghosts — so no
        // shared lock guards it.
        let b_start = Barrier::new(shards + 1);
        let b_mac_done = Barrier::new(shards + 1);
        let b_merged = Barrier::new(shards + 1);
        let b_rx_done = Barrier::new(shards + 1);
        let t_end_micros = AtomicU64::new(0);
        // Each shard's next-activity time, published by its worker
        // before the window's last barrier. The main thread picks the
        // next window from these without taking a single lock, so fully
        // idle stretches of the timeline fast-forward in O(shards).
        let next_slots: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(u64::MAX)).collect();
        let done = AtomicBool::new(false);
        let panicked = AtomicBool::new(false);
        let worker_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let slack = radio.airtime(radio.max_frame_bytes as u32 * 8) * 2;
        // A panic on the main thread must not unwind inside the scope:
        // the workers would be parked at a barrier and the scope's
        // implicit join would deadlock. Every main-thread segment runs
        // under catch_unwind, completes the window's rendezvous, and
        // the payload re-raises after the scope ends.
        let mut main_panic: Option<Box<dyn std::any::Any + Send>> = None;

        std::thread::scope(|scope| {
            let ctx = &ctx;
            let cells = &cells;
            let b_start = &b_start;
            let b_mac_done = &b_mac_done;
            let b_merged = &b_merged;
            let b_rx_done = &b_rx_done;
            let t_end_micros = &t_end_micros;
            let next_slots = &next_slots;
            let done = &done;
            let panicked = &panicked;
            let worker_panic = &worker_panic;
            for (index, cell) in cells.iter().enumerate().take(shards) {
                scope.spawn(move || loop {
                    b_start.wait();
                    if done.load(AtomicOrdering::Relaxed) {
                        return;
                    }
                    let t_end = SimTime::from_micros(t_end_micros.load(AtomicOrdering::Relaxed));
                    // Workers always reach every barrier, even after a
                    // panic somewhere — the main thread re-raises once
                    // the window's rendezvous completes.
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        if !csma && !panicked.load(AtomicOrdering::Relaxed) {
                            let mut core = cell
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            core.mac_was_idle = core.mac_idle(t_end, ctx.deadline);
                            if !core.mac_was_idle {
                                core.run_phase1(ctx, t_end, None);
                            }
                        }
                    }));
                    if let Err(payload) = result {
                        panicked.store(true, AtomicOrdering::Relaxed);
                        worker_panic
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .get_or_insert(payload);
                    }
                    b_mac_done.wait();
                    b_merged.wait();
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        if !panicked.load(AtomicOrdering::Relaxed) {
                            let mut core = cell
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            let rx_was_idle = core.rx_idle(t_end, ctx.deadline);
                            if !rx_was_idle {
                                core.run_phase2_ghost(ctx, t_end, None);
                            }
                            if core.mac_was_idle && rx_was_idle {
                                core.windows_skipped += 1;
                            }
                            let horizon = SimTime::from_micros(
                                t_end.as_micros().saturating_sub(slack.as_micros()),
                            );
                            core.ghost.prune(horizon);
                            // Publish this shard's next-activity time:
                            // every event the merge or the phases could
                            // push for this window is in by now, so the
                            // main thread can pick the next window from
                            // the slots alone.
                            next_slots[index].store(
                                core.next_at().map_or(u64::MAX, |t| t.as_micros()),
                                AtomicOrdering::Release,
                            );
                        }
                    }));
                    if let Err(payload) = result {
                        panicked.store(true, AtomicOrdering::Relaxed);
                        worker_panic
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .get_or_insert(payload);
                    }
                    b_rx_done.wait();
                });
            }

            let lock_all = || -> Vec<std::sync::MutexGuard<'_, &mut ShardCore<P>>> {
                cells
                    .iter()
                    .map(|c| c.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
                    .collect()
            };
            // Seed the next-activity slots: the workers have not run a
            // window yet, so nothing has been published. The locks are
            // uncontended — everyone is parked at the start barrier.
            {
                let guards = lock_all();
                for (slot, guard) in next_slots.iter().zip(guards.iter()) {
                    slot.store(
                        guard.next_at().map_or(u64::MAX, |t| t.as_micros()),
                        AtomicOrdering::Relaxed,
                    );
                }
            }
            loop {
                // Pick the next window from the published next-activity
                // times: no locks, no heap walks, and fully idle
                // stretches of the timeline are skipped in one step.
                let mut min = u64::MAX;
                for slot in next_slots {
                    min = min.min(slot.load(AtomicOrdering::Acquire));
                }
                if min == u64::MAX || min > deadline.as_micros() {
                    break;
                }
                let t_end = window_end(SimTime::from_micros(min), *lookahead);
                *windows_executed += 1;
                // Window-start master dynamics: the locks are taken only
                // when an entry actually falls inside this window.
                let mut deferred: Vec<(usize, (i64, i64))> = Vec::new();
                if master_dyn
                    .peek()
                    .is_some_and(|d| d.at < t_end && d.at <= deadline)
                {
                    match catch_unwind(AssertUnwindSafe(|| {
                        let mut guards = lock_all();
                        let mut refs: Vec<&mut ShardCore<P>> =
                            guards.iter_mut().map(|g| &mut ***g).collect();
                        apply_master_dynamics(
                            master_dyn, master, &mut refs, air, owner, t_end, deadline, true,
                        )
                    })) {
                        Ok(d) => deferred = d,
                        Err(payload) => {
                            panicked.store(true, AtomicOrdering::Relaxed);
                            main_panic = Some(payload);
                        }
                    }
                }
                t_end_micros.store(t_end.as_micros(), AtomicOrdering::Relaxed);
                b_start.wait();
                if csma && !panicked.load(AtomicOrdering::Relaxed) {
                    // Zero-lookahead MAC: globally ordered, on this
                    // thread, while the workers idle at the barrier.
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let mut guards = lock_all();
                        let mut refs: Vec<&mut ShardCore<P>> =
                            guards.iter_mut().map(|g| &mut ***g).collect();
                        run_phase1_csma(&mut refs, air, next_seq, ctx, t_end, None);
                    }));
                    if let Err(payload) = result {
                        panicked.store(true, AtomicOrdering::Relaxed);
                        main_panic = Some(payload);
                    }
                }
                b_mac_done.wait();
                if !panicked.load(AtomicOrdering::Relaxed) {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let mut guards = lock_all();
                        let mut refs: Vec<&mut ShardCore<P>> =
                            guards.iter_mut().map(|g| &mut ***g).collect();
                        assign_and_broadcast(
                            &mut refs,
                            air,
                            next_seq,
                            frames_sent,
                            trace_main,
                            merge_scratch,
                            None,
                            owner,
                            ctx.tracing,
                            radio.energy.tx_nj_per_bit,
                            fan_out,
                            true,
                            ctx.mac.dfa_config().is_some(),
                        );
                        // The barrier routed this window's publications
                        // with the conservative pre-move ∪ post-move
                        // interest; the pre-move halves retire now.
                        apply_interest_decrements(&mut refs, &deferred);
                    }));
                    if let Err(payload) = result {
                        panicked.store(true, AtomicOrdering::Relaxed);
                        main_panic = Some(payload);
                    }
                }
                b_merged.wait();
                // The workers run the receive phase against their own
                // ghosts; the global view is exclusively ours here, so
                // barrier B (air garbage collection) overlaps with it.
                if !panicked.load(AtomicOrdering::Relaxed) {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let horizon = SimTime::from_micros(
                            t_end.as_micros().saturating_sub(slack.as_micros()),
                        );
                        air.prune(horizon);
                    }));
                    if let Err(payload) = result {
                        panicked.store(true, AtomicOrdering::Relaxed);
                        main_panic = Some(payload);
                    }
                }
                b_rx_done.wait();
                if panicked.load(AtomicOrdering::Relaxed) {
                    break;
                }
            }
            done.store(true, AtomicOrdering::Relaxed);
            b_start.wait();
        });
        if let Some(payload) = main_panic.or_else(|| {
            worker_panic
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }) {
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{ChannelState, GilbertElliott, PartitionWindow};

    /// Sends `to_send` frames at start; counts frames heard.
    struct Chatter {
        to_send: u32,
        heard: u32,
        payload_bytes: usize,
    }

    impl Protocol for Chatter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.to_send {
                ctx.send(FramePayload::from_bytes(vec![0xAA; self.payload_bytes]).unwrap())
                    .unwrap();
            }
        }
        fn on_frame(&mut self, _ctx: &mut Context<'_>, _frame: &Frame) {
            self.heard += 1;
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_>, _timer: Timer) {}
    }

    fn two_node(seed: u64, mac: MacConfig, shards: usize) -> ShardedSim<Chatter> {
        let mut sim = ShardedSimBuilder::new(seed)
            .mac(mac)
            .shards(shards)
            .build(|id| Chatter {
                to_send: if id == NodeId(0) { 3 } else { 0 },
                heard: 0,
                payload_bytes: 10,
            });
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(10.0, 0.0));
        sim
    }

    #[test]
    fn aloha_two_node_delivery() {
        let mut sim = two_node(1, MacConfig::aloha(), 2);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.protocol(NodeId(1)).heard, 3);
        assert_eq!(sim.stats().frames_sent, 3);
        assert_eq!(sim.stats().deliveries, 3);
    }

    /// The O(active) contract, global half (ISSUE 7): advancing the
    /// clock across a fully idle stretch must execute zero windows —
    /// a naive engine would walk ~200k empty lookahead windows here,
    /// scanning every shard in each.
    #[test]
    fn fully_idle_stretches_execute_zero_windows() {
        let mut sim = two_node(7, MacConfig::aloha(), 2);
        sim.run_until(SimTime::from_secs(1));
        let active = sim.windows_executed();
        assert!(active > 0, "the chatter phase must execute windows");
        assert_eq!(sim.protocol(NodeId(1)).heard, 3);
        sim.run_until(SimTime::from_secs(101));
        assert_eq!(
            sim.windows_executed(),
            active,
            "idle time must be skipped, not walked window by window"
        );
    }

    /// The O(active) contract, per-shard half: a shard owning only
    /// silent nodes fast-forwards through windows its busy siblings
    /// execute, without perturbing their deliveries.
    #[test]
    fn idle_shards_skip_windows_inside_active_ones() {
        let mut sim = ShardedSimBuilder::new(9)
            .mac(MacConfig::aloha())
            .shards(2)
            .build(|id| Chatter {
                to_send: if id.0 == 0 { 2 } else { 0 },
                heard: 0,
                payload_bytes: 10,
            });
        // Two clusters far apart: the default spatial-stripe placement
        // gives the silent right-hand pair its own shard.
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(10.0, 0.0));
        sim.add_node_at(Position::new(1000.0, 0.0));
        sim.add_node_at(Position::new(1010.0, 0.0));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.protocol(NodeId(1)).heard, 2);
        assert_eq!(sim.protocol(NodeId(2)).heard, 0);
        assert!(
            sim.shard_windows_skipped() > 0,
            "the silent shard must skip, not walk, the busy windows"
        );
    }

    #[test]
    fn csma_two_node_delivery() {
        let mut sim = two_node(1, MacConfig::csma(), 2);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.protocol(NodeId(1)).heard, 3);
        assert_eq!(sim.stats().deliveries, 3);
    }

    /// An uncontended DFA sender: every slot transmission succeeds,
    /// every transmission gets exactly one feedback verdict, and the
    /// frame/slot accounting holds.
    #[test]
    fn dfa_two_node_delivery() {
        let mac = MacConfig::dfa_known(SimDuration::from_millis(8), 2);
        let mut sim = two_node(1, mac, 2);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.protocol(NodeId(1)).heard, 3);
        assert_eq!(sim.stats().frames_sent, 3);
        assert_eq!(sim.stats().deliveries, 3);
        let dfa = sim.dfa_stats();
        assert_eq!(dfa.successes, 3);
        assert_eq!(dfa.collisions, 0);
        assert_eq!(dfa.attempts(), sim.stats().frames_sent);
        assert!(dfa.frames >= 3, "one frame draw per attempt at least");
        assert_eq!(
            dfa.slots,
            dfa.frames * 2,
            "known N=2 sizes every frame at 2"
        );
    }

    /// A saturated DFA clique: collided frames are requeued and
    /// re-contend in later frames until every payload is through —
    /// the engine must drain completely, with exactly one feedback
    /// verdict per transmission.
    #[test]
    fn dfa_clique_requeues_collisions_until_drained() {
        let mac = MacConfig::dfa_known(SimDuration::from_millis(8), 4);
        let mut sim = ShardedSimBuilder::new(3)
            .mac(mac)
            .shards(2)
            .build(|_| Chatter {
                to_send: 3,
                heard: 0,
                payload_bytes: 10,
            });
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(10.0, 0.0));
        sim.add_node_at(Position::new(0.0, 10.0));
        sim.add_node_at(Position::new(10.0, 10.0));
        sim.run_until(SimTime::from_secs(30));
        for id in sim.node_ids() {
            assert_eq!(
                sim.protocol(id).heard,
                9,
                "{id} must hear all 3 frames of its 3 peers"
            );
        }
        let dfa = sim.dfa_stats();
        assert_eq!(
            dfa.successes, 12,
            "12 distinct payloads eventually got through"
        );
        assert_eq!(
            dfa.attempts(),
            sim.stats().frames_sent,
            "one verdict per transmission"
        );
        assert_eq!(
            sim.stats().frames_sent,
            12 + dfa.collisions,
            "every extra transmission is a requeued collision"
        );
    }

    /// DFA digests — including the DFA counters — are shard-count
    /// invariant (the deterministic cousin of the proptests in
    /// `tests/shard_invariance.rs`).
    #[test]
    fn dfa_is_shard_count_invariant() {
        let mac = MacConfig::dfa_known(SimDuration::from_millis(8), 16);
        let mut reference = grid_run(11, mac, 1, false);
        reference.run_until(SimTime::from_secs(20));
        let want = (digest(&reference), reference.dfa_stats());
        for shards in [2usize, 4] {
            let mut sim = grid_run(11, mac, shards, false);
            sim.run_until(SimTime::from_secs(20));
            assert_eq!(
                (digest(&sim), sim.dfa_stats()),
                want,
                "diverged at {shards} shards"
            );
        }
    }

    /// The condensed output of one run: everything the engine promises
    /// to keep invariant across shard counts.
    #[derive(Debug, PartialEq)]
    struct RunDigest {
        stats: MediumStats,
        heard: Vec<u32>,
        total: EnergyMeter,
        traces: Vec<TraceEvent>,
    }

    fn digest(sim: &ShardedSim<Chatter>) -> RunDigest {
        RunDigest {
            stats: sim.stats(),
            heard: sim.node_ids().map(|id| sim.protocol(id).heard).collect(),
            total: sim.total_meter(),
            traces: sim
                .tracer()
                .map(|t| t.events().copied().collect())
                .unwrap_or_default(),
        }
    }

    /// A saturated 4×4 grid with mobility, churn, partitions, duty
    /// cycling, and a lossy fault channel — every code path at once.
    fn grid_run(seed: u64, mac: MacConfig, shards: usize, faulty: bool) -> ShardedSim<Chatter> {
        let topo = Topology::grid(4, 4, 30.0, 45.0);
        let mut builder = ShardedSimBuilder::new(seed).mac(mac).range(45.0);
        if faulty {
            builder = builder.faults(
                FaultModel::none()
                    .with_channel(GilbertElliott::bursty(
                        ChannelState {
                            frame_erasure: 0.02,
                            bit_error_rate: 1e-3,
                        },
                        ChannelState {
                            frame_erasure: 0.3,
                            bit_error_rate: 1e-2,
                        },
                        0.1,
                        0.4,
                    ))
                    .with_churn_event(SimTime::from_millis(300), NodeId(5), false)
                    .with_churn_event(SimTime::from_millis(700), NodeId(5), true)
                    .with_partition(PartitionWindow::new(
                        SimTime::from_millis(200),
                        SimTime::from_millis(600),
                        vec![NodeId(0), NodeId(1), NodeId(4)],
                    )),
            );
        }
        let mut sim = builder
            .shards(shards)
            .build_with_topology(&topo, |id| Chatter {
                to_send: 2 + id.0 % 3,
                heard: 0,
                payload_bytes: 12,
            });
        sim.enable_trace(100_000);
        sim.schedule_move(
            SimTime::from_millis(250),
            NodeId(3),
            Position::new(200.0, 200.0),
        );
        sim.schedule_move(
            SimTime::from_millis(800),
            NodeId(3),
            Position::new(30.0, 0.0),
        );
        if faulty {
            sim.set_duty_cycle(
                NodeId(7),
                Some(DutyCycle::new(
                    SimDuration::from_millis(50),
                    0.5,
                    SimDuration::ZERO,
                )),
            );
        }
        sim
    }

    fn grid_digest(seed: u64, mac: MacConfig, shards: usize, faulty: bool) -> RunDigest {
        let mut sim = grid_run(seed, mac, shards, faulty);
        // Split the run so rebalancing after the mid-run move happens.
        sim.run_until(SimTime::from_millis(500));
        sim.run_until(SimTime::from_millis(1500));
        digest(&sim)
    }

    #[test]
    fn shard_count_invariance_aloha() {
        let reference = grid_digest(11, MacConfig::aloha(), 1, false);
        assert!(reference.stats.frames_sent > 0);
        assert!(reference.stats.deliveries > 0);
        assert!(!reference.traces.is_empty());
        for shards in [2, 4, 8] {
            assert_eq!(
                grid_digest(11, MacConfig::aloha(), shards, false),
                reference,
                "ALOHA run diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn shard_count_invariance_csma() {
        let reference = grid_digest(12, MacConfig::csma(), 1, false);
        assert!(reference.stats.frames_sent > 0);
        assert!(reference.stats.deliveries > 0);
        for shards in [2, 4, 8] {
            assert_eq!(
                grid_digest(12, MacConfig::csma(), shards, false),
                reference,
                "CSMA run diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn shard_count_invariance_with_faults() {
        for mac in [MacConfig::aloha(), MacConfig::csma()] {
            let reference = grid_digest(13, mac, 1, true);
            assert!(reference.stats.frames_sent > 0);
            for shards in [2, 4] {
                assert_eq!(
                    grid_digest(13, mac, shards, true),
                    reference,
                    "faulty run diverged at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_forced_serial() {
        for mac in [MacConfig::aloha(), MacConfig::csma()] {
            // The 16-node grid is far below the threading threshold, so
            // force the worker-thread path to pin serial == threaded.
            let mut parallel = grid_run(14, mac, 4, true);
            parallel.set_force_threads(true);
            let mut serial = grid_run(14, mac, 4, true);
            serial.set_force_serial(true);
            parallel.run_until(SimTime::from_secs(1));
            serial.run_until(SimTime::from_secs(1));
            assert_eq!(digest(&parallel), digest(&serial));
        }
    }

    /// The full invariance digest, but on the worker-thread engine
    /// (ghost replicas, interest routing once dynamics drain).
    #[test]
    fn shard_count_invariance_threaded() {
        for (seed, mac) in [(15, MacConfig::aloha()), (16, MacConfig::csma())] {
            let reference = grid_digest(seed, mac, 1, true);
            assert!(reference.stats.frames_sent > 0);
            for shards in [2, 4, 8] {
                let mut sim = grid_run(seed, mac, shards, true);
                sim.set_force_threads(true);
                sim.run_until(SimTime::from_millis(500));
                sim.run_until(SimTime::from_millis(1500));
                assert_eq!(
                    digest(&sim),
                    reference,
                    "threaded {mac:?} run diverged at {shards} shards"
                );
            }
        }
    }

    /// Regression test for the PR 5 `sim_fault_channel` blowup: a
    /// testbed-sized topology sharded four ways must run the windowed
    /// loop inline — worker threads and their per-window barriers cost
    /// orders of magnitude more than such a simulation does.
    #[test]
    fn small_topologies_gate_to_the_inline_loop() {
        let mut sim = two_node(41, MacConfig::csma(), 4);
        assert!(
            !sim.uses_worker_threads(),
            "a 2-node sim must not spin up worker threads"
        );
        // The debugging knobs still override the cost model…
        sim.set_force_threads(true);
        assert!(sim.uses_worker_threads());
        // …with force_serial winning over force_threads.
        sim.set_force_serial(true);
        assert!(!sim.uses_worker_threads());
        // Single-shard sims never thread, whatever the knobs say.
        let mut single = two_node(41, MacConfig::csma(), 1);
        single.set_force_threads(true);
        assert!(!single.uses_worker_threads());
    }

    /// Panics at a fixed sim time on one node.
    struct Grenade {
        armed: bool,
    }

    impl Protocol for Grenade {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if self.armed {
                ctx.set_timer(SimDuration::from_millis(7), 99);
            }
        }
        fn on_frame(&mut self, _ctx: &mut Context<'_>, _frame: &Frame) {}
        fn on_timer(&mut self, _ctx: &mut Context<'_>, _timer: Timer) {
            panic!("protocol detonated");
        }
    }

    /// A panic inside a protocol callback on a worker thread must
    /// propagate to the caller with its original payload — not hang the
    /// barrier protocol, and not surface as a generic secondhand
    /// message.
    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        let result = std::panic::catch_unwind(|| {
            let mut sim = ShardedSimBuilder::new(43)
                .shards(4)
                .build(|id| Grenade { armed: id.0 == 2 });
            for i in 0..8 {
                sim.add_node_at(Position::new(f64::from(i) * 30.0, 0.0));
            }
            sim.set_force_threads(true);
            sim.run_until(SimTime::from_secs(1));
        });
        let payload = result.expect_err("the protocol panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert_eq!(message, "protocol detonated");
    }

    /// Every placement strategy yields valid shard indexes and — the
    /// engine's core promise — identical output.
    #[test]
    fn placement_strategies_never_change_output() {
        let reference = grid_digest(17, MacConfig::csma(), 1, true);
        let strategies: Vec<Box<dyn ShardStrategy>> = vec![
            Box::new(GridHash),
            Box::new(SpatialStripes),
            Box::new(DegreeBalanced),
        ];
        for strategy in strategies {
            let name = strategy.name();
            let topo = Topology::grid(4, 4, 30.0, 45.0);
            let assignment = strategy.assign(&topo, 45.0, 3);
            assert_eq!(assignment.len(), 16);
            assert!(assignment.iter().all(|&s| s < 3), "{name} out of range");
            let mut sim = grid_run(17, MacConfig::csma(), 3, true);
            sim.strategy = strategy;
            sim.placement_dirty = true;
            sim.run_until(SimTime::from_millis(500));
            sim.run_until(SimTime::from_millis(1500));
            assert_eq!(digest(&sim), reference, "{name} diverged");
        }
    }

    /// SpatialStripes cuts the cell-sorted order into contiguous
    /// near-equal chunks.
    #[test]
    fn spatial_stripes_are_contiguous_and_balanced() {
        let topo = Topology::grid(8, 8, 30.0, 45.0);
        let assignment = SpatialStripes.assign(&topo, 45.0, 4);
        let mut sizes = [0usize; 4];
        for &s in &assignment {
            sizes[s as usize] += 1;
        }
        assert_eq!(sizes, [16, 16, 16, 16]);
    }

    /// DegreeBalanced spreads a hotspot: with one dense cluster and
    /// isolated outliers, no shard gets the whole cluster plus extras.
    #[test]
    fn degree_balanced_splits_hotspots() {
        let mut topo = Topology::new(50.0);
        // 12 mutually in-range nodes plus 4 isolated ones.
        for i in 0..12 {
            topo.add(Position::new(f64::from(i) * 0.5, 0.0));
        }
        for i in 0..4 {
            topo.add(Position::new(1000.0 + f64::from(i) * 500.0, 0.0));
        }
        let assignment = DegreeBalanced.assign(&topo, 50.0, 4);
        let mut cluster_per_shard = [0usize; 4];
        for node in 0..12 {
            cluster_per_shard[assignment[node] as usize] += 1;
        }
        assert_eq!(cluster_per_shard, [3, 3, 3, 3]);
    }

    /// Arms two timers at start, cancels one of them.
    struct Ticker {
        fired: Vec<u64>,
    }

    impl Protocol for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_millis(10), 1);
            let doomed = ctx.set_timer(SimDuration::from_millis(20), 2);
            ctx.set_timer(SimDuration::from_millis(30), 3);
            ctx.cancel_timer(doomed);
        }
        fn on_frame(&mut self, _ctx: &mut Context<'_>, _frame: &Frame) {}
        fn on_timer(&mut self, _ctx: &mut Context<'_>, timer: Timer) {
            self.fired.push(timer.token);
        }
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        let mut sim = ShardedSimBuilder::new(9)
            .shards(2)
            .build(|_| Ticker { fired: Vec::new() });
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(10.0, 0.0));
        sim.run_until(SimTime::from_millis(100));
        for id in [NodeId(0), NodeId(1)] {
            assert_eq!(sim.protocol(id).fired, vec![1, 3]);
        }
    }

    #[test]
    fn moving_out_of_range_stops_delivery() {
        let mut sim = ShardedSimBuilder::new(21)
            .mac(MacConfig::aloha())
            .shards(2)
            .build(|id| Chatter {
                to_send: if id == NodeId(0) { 1 } else { 0 },
                heard: 0,
                payload_bytes: 8,
            });
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(10.0, 0.0));
        sim.enable_trace(64);
        sim.schedule_move(
            SimTime::from_millis(0),
            NodeId(1),
            Position::new(900.0, 0.0),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().frames_sent, 1);
        assert_eq!(sim.stats().deliveries, 0);
        assert!(sim.tracer().unwrap().events().any(|e| matches!(
            e,
            TraceEvent::Moved {
                node: NodeId(1),
                ..
            }
        )));
    }

    #[test]
    fn dead_nodes_do_not_hear_and_revival_reboots() {
        // Node 1 dies before the frame, revives, and re-runs on_start
        // (sending its own frame after rebirth).
        let mut sim = ShardedSimBuilder::new(22)
            .mac(MacConfig::aloha())
            .shards(2)
            .build(|_| Chatter {
                to_send: 1,
                heard: 0,
                payload_bytes: 8,
            });
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(10.0, 0.0));
        sim.enable_trace(64);
        sim.schedule_set_alive(SimTime::from_micros(1), NodeId(1), false);
        sim.schedule_set_alive(SimTime::from_millis(500), NodeId(1), true);
        sim.run_until(SimTime::from_secs(1));
        // Node 0's start-of-run frame found node 1 dead; node 1's
        // rebirth re-ran on_start, and that frame was heard by node 0.
        assert_eq!(sim.protocol(NodeId(0)).heard, 1);
        let liveness: Vec<bool> = sim
            .tracer()
            .unwrap()
            .events()
            .filter_map(|e| match e {
                TraceEvent::Liveness {
                    node: NodeId(1),
                    alive,
                    ..
                } => Some(*alive),
                _ => None,
            })
            .collect();
        assert_eq!(liveness, vec![false, true]);
    }

    #[test]
    fn duty_cycle_sleep_misses_and_awake_micros() {
        let mut sim = two_node(23, MacConfig::aloha(), 2);
        sim.set_duty_cycle(
            NodeId(1),
            Some(DutyCycle::new(
                // Asleep whenever anything is on the air: period 1 s,
                // on only in the last half, frames start near t=0.
                SimDuration::from_secs(1),
                0.5,
                SimDuration::from_millis(500),
            )),
        );
        sim.run_until(SimTime::from_millis(400));
        assert_eq!(sim.stats().sleep_misses, 3);
        assert_eq!(sim.protocol(NodeId(1)).heard, 0);
        assert_eq!(sim.awake_micros(NodeId(1)), 200_000);
        assert_eq!(sim.awake_micros(NodeId(0)), 400_000);
    }

    #[test]
    fn hidden_terminals_collide_in_sharded_engine() {
        let mut sim = ShardedSimBuilder::new(24)
            .range(100.0)
            .shards(4)
            .build(|id| Chatter {
                to_send: if id != NodeId(1) { 40 } else { 0 },
                heard: 0,
                payload_bytes: 27,
            });
        sim.add_node_at(Position::new(-90.0, 0.0));
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(90.0, 0.0));
        sim.run_until(SimTime::from_secs(10));
        assert!(
            sim.stats().rf_collisions > 0,
            "hidden terminals must produce RF collisions: {}",
            sim.stats()
        );
    }

    #[test]
    fn builder_bulk_topology_matches_incremental_adds() {
        let topo = Topology::grid(3, 3, 30.0, 45.0);
        let mk_chatter = |id: NodeId| Chatter {
            to_send: 1 + id.0 % 2,
            heard: 0,
            payload_bytes: 6,
        };
        let mut bulk = ShardedSimBuilder::new(31)
            .range(45.0)
            .shards(3)
            .build_with_topology(&topo, mk_chatter);
        let mut incremental = ShardedSimBuilder::new(31)
            .range(45.0)
            .shards(3)
            .build(mk_chatter);
        for id in topo.node_ids() {
            incremental.add_node_at(topo.position(id));
        }
        bulk.run_until(SimTime::from_secs(1));
        incremental.run_until(SimTime::from_secs(1));
        assert_eq!(digest(&bulk), digest(&incremental));
    }

    #[test]
    fn node_streams_are_distinct_per_label_and_node() {
        let mut seen = HashSet::new();
        for label in [
            "netsim.shard.mac",
            "netsim.shard.proto",
            "netsim.shard.chan",
        ] {
            for node in 0..64 {
                assert!(seen.insert(node_stream_seed(42, label, NodeId(node))));
            }
        }
    }
}
