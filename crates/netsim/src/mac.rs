//! Medium-access control.
//!
//! Low-power sensor radios like the paper's Radiometrix RPC have
//! "extremely simple MACs" (Section 4.4): at most carrier sensing with a
//! random backoff, nothing like 802.11's RTS/CTS or per-packet
//! hundreds-of-bits overhead. The simulator offers exactly that spectrum:
//! pure ALOHA (transmit immediately), non-persistent CSMA (if the
//! channel sounds busy, back off a random number of slots and try
//! again), and Dynamic-Frame Aloha (time is divided into frames of `L`
//! slots; each backlogged node transmits in one uniformly chosen slot
//! per frame and re-contends in the next frame after a collision).
//!
//! DFA's frame length can be fixed, sized for a known population
//! (`L* = N`, the Barletta–Borgonovo–Cesana optimum implemented in
//! `retri_model::dfa`), or sized live from each node's
//! density-estimated population — the RETRI listening window acting as
//! the population estimator.

use core::fmt;

use crate::time::SimDuration;

/// How a DFA node picks the length of its next frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FrameSizing {
    /// Every frame has exactly this many slots.
    Fixed(u32),
    /// The population is known out of band; frames use the optimal
    /// setting `L* = N` (Barletta et al.).
    KnownPopulation(u32),
    /// Each node sizes its frames from its own live population
    /// estimate (the protocol's `population_estimate`, typically a
    /// `DensityEstimator` fed by the listening window).
    Estimated,
}

impl fmt::Display for FrameSizing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameSizing::Fixed(l) => write!(f, "fixed L={l}"),
            FrameSizing::KnownPopulation(n) => write!(f, "known N={n}"),
            FrameSizing::Estimated => write!(f, "estimated N"),
        }
    }
}

/// Dynamic-Frame Aloha parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DfaConfig {
    /// Length of one frame slot. Must cover the airtime of the longest
    /// frame the protocol transmits, or slot boundaries stop protecting
    /// neighbours from overlap.
    pub slot: SimDuration,
    /// How the frame length is chosen.
    pub sizing: FrameSizing,
    /// Lower clamp on the frame length, in slots. A floor above 1
    /// keeps the estimated mode from collapsing into a permanently
    /// colliding single-slot frame while the estimator warms up.
    pub min_frame_slots: u32,
    /// Upper clamp on the frame length, in slots.
    pub max_frame_slots: u32,
}

impl DfaConfig {
    /// The frame length to use, given the node's current population
    /// estimate (only consulted in [`FrameSizing::Estimated`] mode),
    /// clamped to `min_frame_slots..=max_frame_slots`.
    #[must_use]
    pub fn frame_length(&self, estimate: Option<u64>) -> u32 {
        let raw = match self.sizing {
            FrameSizing::Fixed(l) => u64::from(l),
            // L* = N: retri_model::dfa::optimal_frame_length.
            FrameSizing::KnownPopulation(n) => u64::from(n),
            FrameSizing::Estimated => estimate.unwrap_or(1),
        };
        let clamped = raw
            .max(u64::from(self.min_frame_slots))
            .min(u64::from(self.max_frame_slots));
        u32::try_from(clamped).expect("clamped to a u32 bound")
    }
}

/// Counters the Dynamic-Frame Aloha engine keeps per run, reported
/// separately from [`crate::sim::MediumStats`] so non-DFA provenance is
/// unchanged.
///
/// The per-slot feedback DFA classically exposes is recoverable from
/// these totals: `attempts = successes + collisions` transmissions
/// occupied at most `attempts` of the `slots` scheduled slots, and the
/// rest were empty.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DfaStats {
    /// Frames scheduled (one per node per contention round).
    pub frames: u64,
    /// Total slots across all scheduled frames.
    pub slots: u64,
    /// Transmissions that ended with no audible foreign overlap.
    pub successes: u64,
    /// Transmissions that overlapped a foreign audible transmission.
    pub collisions: u64,
}

impl DfaStats {
    /// Transmission attempts: successes plus collisions.
    #[must_use]
    pub fn attempts(&self) -> u64 {
        self.successes + self.collisions
    }

    /// Accumulates another stats block (used to sum per-shard counters).
    pub fn merge(&mut self, other: &DfaStats) {
        self.frames += other.frames;
        self.slots += other.slots;
        self.successes += other.successes;
        self.collisions += other.collisions;
    }
}

/// Which access discipline the MAC runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MacMode {
    /// The contention spectrum: pure ALOHA, or non-persistent CSMA when
    /// [`MacConfig::carrier_sense`] is set.
    Contention,
    /// Dynamic-Frame Aloha.
    Dfa(DfaConfig),
}

/// MAC configuration shared by every node in a simulation.
///
/// # Examples
///
/// ```
/// use retri_netsim::mac::MacConfig;
///
/// let csma = MacConfig::default();
/// assert!(csma.carrier_sense);
///
/// let aloha = MacConfig::aloha();
/// assert!(!aloha.carrier_sense);
///
/// let dfa = MacConfig::dfa_known(retri_netsim::SimDuration::from_millis(8), 16);
/// assert!(dfa.dfa_config().is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MacConfig {
    /// Listen before transmitting; if the channel is audibly busy, back
    /// off. Disable for pure ALOHA. Only meaningful in
    /// [`MacMode::Contention`].
    pub carrier_sense: bool,
    /// Length of one backoff slot.
    pub backoff_slot: SimDuration,
    /// Backoff is drawn uniformly from `1..=max_backoff_slots` slots.
    pub max_backoff_slots: u32,
    /// Quiet gap a node leaves after finishing a transmission before
    /// starting its next one (contention modes; DFA paces itself by
    /// frame instead).
    pub ifs: SimDuration,
    /// The access discipline.
    pub mode: MacMode,
}

impl MacConfig {
    /// Non-persistent CSMA tuned for a 40 kbit/s radio with ~7 ms
    /// frames: 1 ms slots, up to 16 of them, 2 ms inter-frame spacing.
    #[must_use]
    pub fn csma() -> Self {
        MacConfig {
            carrier_sense: true,
            backoff_slot: SimDuration::from_millis(1),
            max_backoff_slots: 16,
            ifs: SimDuration::from_millis(2),
            mode: MacMode::Contention,
        }
    }

    /// Pure ALOHA: transmit the moment a frame is queued; collisions are
    /// resolved only by upper-layer robustness.
    #[must_use]
    pub fn aloha() -> Self {
        MacConfig {
            carrier_sense: false,
            backoff_slot: SimDuration::from_millis(1),
            max_backoff_slots: 1,
            ifs: SimDuration::from_millis(2),
            mode: MacMode::Contention,
        }
    }

    /// Dynamic-Frame Aloha with the given slot length and frame sizing.
    ///
    /// The frame-length clamp defaults to `1..=4096` slots; adjust the
    /// [`DfaConfig`] fields for other bounds.
    #[must_use]
    pub fn dfa(slot: SimDuration, sizing: FrameSizing) -> Self {
        MacConfig {
            carrier_sense: false,
            backoff_slot: SimDuration::from_millis(1),
            max_backoff_slots: 1,
            ifs: SimDuration::from_millis(2),
            mode: MacMode::Dfa(DfaConfig {
                slot,
                sizing,
                min_frame_slots: 1,
                max_frame_slots: 4096,
            }),
        }
    }

    /// DFA at the known-population optimum `L* = N`.
    #[must_use]
    pub fn dfa_known(slot: SimDuration, population: u32) -> Self {
        Self::dfa(slot, FrameSizing::KnownPopulation(population))
    }

    /// DFA sized live from each node's density estimate, with a floor
    /// of `min_frame_slots` while the estimator warms up.
    #[must_use]
    pub fn dfa_estimated(slot: SimDuration, min_frame_slots: u32) -> Self {
        let mut mac = Self::dfa(slot, FrameSizing::Estimated);
        let MacMode::Dfa(ref mut dfa) = mac.mode else {
            unreachable!("dfa() builds a DFA mode");
        };
        dfa.min_frame_slots = min_frame_slots.max(1);
        mac
    }

    /// The DFA parameters, when this MAC runs Dynamic-Frame Aloha.
    #[must_use]
    pub fn dfa_config(&self) -> Option<&DfaConfig> {
        match &self.mode {
            MacMode::Dfa(dfa) => Some(dfa),
            MacMode::Contention => None,
        }
    }

    /// Whether this MAC carrier-senses before transmitting (CSMA). DFA
    /// never does: slot discipline replaces listening.
    #[must_use]
    pub fn is_csma(&self) -> bool {
        self.carrier_sense && self.dfa_config().is_none()
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on configurations that would spin the event loop at a
    /// single instant: carrier sensing with a zero-length slot or zero
    /// backoff range, a zero inter-frame space, or a DFA frame of zero
    /// duration (zero-length slots or a zero-slot clamp). Also rejects
    /// carrier sensing combined with DFA (slot discipline replaces
    /// listening) and an inverted DFA clamp.
    pub fn validate(&self) {
        if self.carrier_sense {
            assert!(
                self.backoff_slot > SimDuration::ZERO,
                "CSMA backoff slot must be positive"
            );
            assert!(
                self.max_backoff_slots > 0,
                "CSMA must allow at least one backoff slot"
            );
        }
        match &self.mode {
            MacMode::Contention => {
                assert!(
                    self.ifs > SimDuration::ZERO,
                    "inter-frame space must be positive"
                );
            }
            MacMode::Dfa(dfa) => {
                assert!(
                    !self.carrier_sense,
                    "DFA does not carrier-sense; disable carrier_sense"
                );
                assert!(dfa.slot > SimDuration::ZERO, "DFA slot must be positive");
                assert!(
                    dfa.min_frame_slots >= 1,
                    "DFA frames need at least one slot"
                );
                assert!(
                    dfa.max_frame_slots >= dfa.min_frame_slots,
                    "DFA frame clamp is inverted"
                );
                match dfa.sizing {
                    FrameSizing::Fixed(l) => {
                        assert!(l >= 1, "fixed DFA frame length must be positive");
                    }
                    FrameSizing::KnownPopulation(n) => {
                        assert!(n >= 1, "known DFA population must be positive");
                    }
                    FrameSizing::Estimated => {}
                }
            }
        }
    }
}

impl Default for MacConfig {
    /// [`MacConfig::csma`].
    fn default() -> Self {
        MacConfig::csma()
    }
}

impl fmt::Display for MacConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(dfa) = self.dfa_config() {
            write!(
                f,
                "DFA (slot {}, {}, {}..={} slots)",
                dfa.slot, dfa.sizing, dfa.min_frame_slots, dfa.max_frame_slots
            )
        } else if self.carrier_sense {
            write!(
                f,
                "CSMA (slot {}, ≤{} slots, ifs {})",
                self.backoff_slot, self.max_backoff_slots, self.ifs
            )
        } else {
            write!(f, "ALOHA (ifs {})", self.ifs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_carrier_sense() {
        assert!(MacConfig::csma().carrier_sense);
        assert!(!MacConfig::aloha().carrier_sense);
        assert_eq!(MacConfig::default(), MacConfig::csma());
    }

    #[test]
    fn validate_accepts_presets() {
        MacConfig::csma().validate();
        MacConfig::aloha().validate();
        MacConfig::dfa_known(SimDuration::from_millis(8), 16).validate();
        MacConfig::dfa_estimated(SimDuration::from_millis(8), 8).validate();
    }

    #[test]
    #[should_panic(expected = "backoff slot must be positive")]
    fn validate_rejects_zero_slot_csma() {
        MacConfig {
            carrier_sense: true,
            backoff_slot: SimDuration::ZERO,
            max_backoff_slots: 4,
            ifs: SimDuration::ZERO,
            mode: MacMode::Contention,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least one backoff slot")]
    fn validate_rejects_zero_slots() {
        MacConfig {
            carrier_sense: true,
            backoff_slot: SimDuration::from_millis(1),
            max_backoff_slots: 0,
            ifs: SimDuration::ZERO,
            mode: MacMode::Contention,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "inter-frame space must be positive")]
    fn validate_rejects_zero_ifs() {
        let mut mac = MacConfig::aloha();
        mac.ifs = SimDuration::ZERO;
        mac.validate();
    }

    #[test]
    #[should_panic(expected = "DFA slot must be positive")]
    fn validate_rejects_zero_dfa_slot() {
        MacConfig::dfa_known(SimDuration::ZERO, 16).validate();
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn validate_rejects_zero_slot_frames() {
        let mut mac = MacConfig::dfa_known(SimDuration::from_millis(8), 16);
        let MacMode::Dfa(ref mut dfa) = mac.mode else {
            unreachable!();
        };
        dfa.min_frame_slots = 0;
        dfa.max_frame_slots = 0;
        mac.validate();
    }

    #[test]
    #[should_panic(expected = "clamp is inverted")]
    fn validate_rejects_inverted_clamp() {
        let mut mac = MacConfig::dfa_known(SimDuration::from_millis(8), 16);
        let MacMode::Dfa(ref mut dfa) = mac.mode else {
            unreachable!();
        };
        dfa.min_frame_slots = 32;
        dfa.max_frame_slots = 8;
        mac.validate();
    }

    #[test]
    #[should_panic(expected = "fixed DFA frame length must be positive")]
    fn validate_rejects_zero_fixed_frame() {
        MacConfig::dfa(SimDuration::from_millis(8), FrameSizing::Fixed(0)).validate();
    }

    #[test]
    #[should_panic(expected = "known DFA population must be positive")]
    fn validate_rejects_zero_population() {
        MacConfig::dfa_known(SimDuration::from_millis(8), 0).validate();
    }

    #[test]
    #[should_panic(expected = "does not carrier-sense")]
    fn validate_rejects_carrier_sensing_dfa() {
        let mut mac = MacConfig::dfa_known(SimDuration::from_millis(8), 16);
        mac.carrier_sense = true;
        mac.validate();
    }

    #[test]
    fn frame_length_clamps_and_sizes() {
        let known = MacConfig::dfa_known(SimDuration::from_millis(8), 16);
        assert_eq!(known.dfa_config().unwrap().frame_length(None), 16);

        let est = MacConfig::dfa_estimated(SimDuration::from_millis(8), 8);
        let dfa = est.dfa_config().unwrap();
        // Warm-up floor applies below min_frame_slots...
        assert_eq!(dfa.frame_length(None), 8);
        assert_eq!(dfa.frame_length(Some(3)), 8);
        // ...the live estimate rules in between...
        assert_eq!(dfa.frame_length(Some(100)), 100);
        // ...and the ceiling clamps runaway estimates.
        assert_eq!(dfa.frame_length(Some(1 << 40)), 4096);
    }

    #[test]
    fn display_names_mode() {
        assert!(MacConfig::csma().to_string().contains("CSMA"));
        assert!(MacConfig::aloha().to_string().contains("ALOHA"));
        let dfa = MacConfig::dfa_known(SimDuration::from_millis(8), 16).to_string();
        assert!(dfa.contains("DFA"), "{dfa}");
        assert!(dfa.contains("known N=16"), "{dfa}");
        assert!(MacConfig::dfa_estimated(SimDuration::from_millis(8), 8)
            .to_string()
            .contains("estimated N"));
    }

    #[test]
    fn contention_macs_have_no_dfa_config() {
        assert!(MacConfig::csma().dfa_config().is_none());
        assert!(MacConfig::csma().is_csma());
        assert!(!MacConfig::aloha().is_csma());
        assert!(!MacConfig::dfa_known(SimDuration::from_millis(8), 4).is_csma());
    }
}
