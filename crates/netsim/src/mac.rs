//! Medium-access control.
//!
//! Low-power sensor radios like the paper's Radiometrix RPC have
//! "extremely simple MACs" (Section 4.4): at most carrier sensing with a
//! random backoff, nothing like 802.11's RTS/CTS or per-packet
//! hundreds-of-bits overhead. The simulator offers exactly that spectrum:
//! pure ALOHA (transmit immediately) or non-persistent CSMA (if the
//! channel sounds busy, back off a random number of slots and try
//! again).

use core::fmt;

use crate::time::SimDuration;

/// MAC configuration shared by every node in a simulation.
///
/// # Examples
///
/// ```
/// use retri_netsim::mac::MacConfig;
///
/// let csma = MacConfig::default();
/// assert!(csma.carrier_sense);
///
/// let aloha = MacConfig::aloha();
/// assert!(!aloha.carrier_sense);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MacConfig {
    /// Listen before transmitting; if the channel is audibly busy, back
    /// off. Disable for pure ALOHA.
    pub carrier_sense: bool,
    /// Length of one backoff slot.
    pub backoff_slot: SimDuration,
    /// Backoff is drawn uniformly from `1..=max_backoff_slots` slots.
    pub max_backoff_slots: u32,
    /// Quiet gap a node leaves after finishing a transmission before
    /// starting its next one.
    pub ifs: SimDuration,
}

impl MacConfig {
    /// Non-persistent CSMA tuned for a 40 kbit/s radio with ~7 ms
    /// frames: 1 ms slots, up to 16 of them, 2 ms inter-frame spacing.
    #[must_use]
    pub fn csma() -> Self {
        MacConfig {
            carrier_sense: true,
            backoff_slot: SimDuration::from_millis(1),
            max_backoff_slots: 16,
            ifs: SimDuration::from_millis(2),
        }
    }

    /// Pure ALOHA: transmit the moment a frame is queued; collisions are
    /// resolved only by upper-layer robustness.
    #[must_use]
    pub fn aloha() -> Self {
        MacConfig {
            carrier_sense: false,
            backoff_slot: SimDuration::from_millis(1),
            max_backoff_slots: 1,
            ifs: SimDuration::from_millis(2),
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if carrier sensing is enabled with a zero-length slot or
    /// zero backoff range (the node would spin at the same instant
    /// forever).
    pub fn validate(&self) {
        if self.carrier_sense {
            assert!(
                self.backoff_slot > SimDuration::ZERO,
                "CSMA backoff slot must be positive"
            );
            assert!(
                self.max_backoff_slots > 0,
                "CSMA must allow at least one backoff slot"
            );
        }
    }
}

impl Default for MacConfig {
    /// [`MacConfig::csma`].
    fn default() -> Self {
        MacConfig::csma()
    }
}

impl fmt::Display for MacConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.carrier_sense {
            write!(
                f,
                "CSMA (slot {}, ≤{} slots, ifs {})",
                self.backoff_slot, self.max_backoff_slots, self.ifs
            )
        } else {
            write!(f, "ALOHA (ifs {})", self.ifs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_carrier_sense() {
        assert!(MacConfig::csma().carrier_sense);
        assert!(!MacConfig::aloha().carrier_sense);
        assert_eq!(MacConfig::default(), MacConfig::csma());
    }

    #[test]
    fn validate_accepts_presets() {
        MacConfig::csma().validate();
        MacConfig::aloha().validate();
    }

    #[test]
    #[should_panic(expected = "backoff slot must be positive")]
    fn validate_rejects_zero_slot_csma() {
        MacConfig {
            carrier_sense: true,
            backoff_slot: SimDuration::ZERO,
            max_backoff_slots: 4,
            ifs: SimDuration::ZERO,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least one backoff slot")]
    fn validate_rejects_zero_slots() {
        MacConfig {
            carrier_sense: true,
            backoff_slot: SimDuration::from_millis(1),
            max_backoff_slots: 0,
            ifs: SimDuration::ZERO,
        }
        .validate();
    }

    #[test]
    fn display_names_mode() {
        assert!(MacConfig::csma().to_string().contains("CSMA"));
        assert!(MacConfig::aloha().to_string().contains("ALOHA"));
    }
}
