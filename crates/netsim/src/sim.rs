//! The discrete-event simulation engine.
//!
//! One [`Simulator`] owns the clock, the event queue, the topology, the
//! medium, the per-node MAC state, and every protocol instance. All
//! randomness flows from a single seeded RNG, and simultaneous events
//! are ordered by insertion sequence, so a run is a pure function of
//! `(seed, configuration, schedule of calls)`.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use retri_obs::Obs;

use crate::energy::EnergyMeter;
use crate::fault::{fault_stream_seed, ChurnEvent, FaultModel};
use crate::frame::{Frame, FramePayload};
use crate::mac::{DfaConfig, DfaStats, MacConfig};
use crate::medium::{DeliveryFailure, Medium, Verdict};
use crate::node::{Command, Context, NodeId, Protocol, Timer, TimerHandle};
use crate::obs::NetsimObs;
use crate::radio::RadioConfig;
use crate::time::SimTime;
use crate::topology::{Position, Topology};
use crate::trace::{LossReason, TraceEvent, Tracer};

/// Medium-level counters for a whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MediumStats {
    /// Frames handed to the air.
    pub frames_sent: u64,
    /// Successful frame deliveries (one per receiver).
    pub deliveries: u64,
    /// Deliveries lost to overlapping transmissions.
    pub rf_collisions: u64,
    /// Deliveries missed because the receiver was itself transmitting.
    pub half_duplex_losses: u64,
    /// Deliveries lost to the independent random-loss draw.
    pub random_losses: u64,
    /// Deliveries missed because the receiver's radio was duty-cycled
    /// off.
    pub sleep_misses: u64,
    /// Deliveries erased outright by the fault channel.
    pub fault_erasures: u64,
    /// Deliveries severed by a fault-model partition window.
    pub partition_losses: u64,
    /// Deliveries that arrived with at least one flipped payload bit
    /// (included in `deliveries`: the frame did reach the protocol).
    pub corrupted_deliveries: u64,
    /// Total payload bits flipped across all corrupted deliveries.
    pub flipped_bits: u64,
}

impl core::fmt::Display for MediumStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} sent, {} delivered, {} RF-collided, {} half-duplex, {} random losses, \
             {} sleep misses, {} fault erasures, {} partition losses, {} corrupted ({} bits)",
            self.frames_sent,
            self.deliveries,
            self.rf_collisions,
            self.half_duplex_losses,
            self.random_losses,
            self.sleep_misses,
            self.fault_erasures,
            self.partition_losses,
            self.corrupted_deliveries,
            self.flipped_bits
        )
    }
}

#[derive(Debug)]
enum EventKind {
    NodeStart(NodeId),
    Timer { node: NodeId, timer: Timer },
    MacTry(NodeId),
    TxEnd { seq: u64, node: NodeId },
    Move { node: NodeId, to: Position },
    SetAlive { node: NodeId, alive: bool },
}

#[derive(Debug)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest (then
        // first-inserted) event is popped first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[derive(Debug)]
struct NodeState<P> {
    protocol: P,
    meter: EnergyMeter,
    queue: VecDeque<FramePayload>,
    transmitting: bool,
    duty_cycle: Option<crate::radio::DutyCycle>,
    /// DFA only: the slot this node committed to transmit in within its
    /// current frame; `None` when no frame is in progress.
    dfa_slot_at: Option<SimTime>,
    /// DFA only: where this node's current frame ends; the next frame
    /// starts no earlier.
    dfa_frame_end: SimTime,
}

/// Configures and constructs a [`Simulator`].
///
/// # Examples
///
/// ```
/// use retri_netsim::prelude::*;
///
/// struct Quiet;
/// impl Protocol for Quiet {
///     fn on_start(&mut self, _ctx: &mut Context<'_>) {}
///     fn on_frame(&mut self, _ctx: &mut Context<'_>, _frame: &Frame) {}
///     fn on_timer(&mut self, _ctx: &mut Context<'_>, _timer: Timer) {}
/// }
///
/// let mut sim = SimBuilder::new(1)
///     .radio(RadioConfig::radiometrix_rpc())
///     .mac(MacConfig::csma())
///     .range(100.0)
///     .build(|_id| Quiet);
/// sim.add_node_at(Position::new(0.0, 0.0));
/// sim.run_until(SimTime::from_secs(1));
/// ```
#[derive(Debug)]
pub struct SimBuilder {
    seed: u64,
    radio: RadioConfig,
    mac: MacConfig,
    range: f64,
    faults: FaultModel,
}

impl SimBuilder {
    /// Starts a builder with the given RNG seed and defaults: the
    /// paper's RPC radio, CSMA, 100 m range.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimBuilder {
            seed,
            radio: RadioConfig::radiometrix_rpc(),
            mac: MacConfig::csma(),
            range: 100.0,
            faults: FaultModel::none(),
        }
    }

    /// Sets the radio model.
    #[must_use]
    pub fn radio(mut self, radio: RadioConfig) -> Self {
        self.radio = radio;
        self
    }

    /// Sets the MAC configuration.
    #[must_use]
    pub fn mac(mut self, mac: MacConfig) -> Self {
        self.mac = mac;
        self
    }

    /// Sets the radio range in meters.
    #[must_use]
    pub fn range(mut self, range: f64) -> Self {
        self.range = range;
        self
    }

    /// Sets the fault model (default: [`FaultModel::none`]).
    ///
    /// All fault randomness comes from a dedicated RNG stream derived
    /// from the builder seed via
    /// [`fault_stream_seed`](crate::fault::fault_stream_seed), so a
    /// run with `FaultModel::none()` is byte-identical to one that
    /// never called this method: no draw of the main RNG moves.
    /// Scheduled churn events must name nodes that are added before
    /// the event time is reached.
    #[must_use]
    pub fn faults(mut self, faults: FaultModel) -> Self {
        self.faults = faults;
        self
    }

    /// Builds the simulator; `factory` creates the protocol instance for
    /// each node added later.
    pub fn build<P, F>(self, factory: F) -> Simulator<P>
    where
        P: Protocol,
        F: FnMut(NodeId) -> P + 'static,
    {
        self.mac.validate();
        let fault_rng = StdRng::seed_from_u64(fault_stream_seed(self.seed));
        let mut sim = Simulator {
            now: SimTime::ZERO,
            radio: self.radio,
            mac: self.mac,
            topology: Topology::new(self.range),
            medium: Medium::new(),
            rng: StdRng::seed_from_u64(self.seed),
            nodes: Vec::new(),
            factory: Box::new(factory),
            heap: BinaryHeap::new(),
            event_seq: 0,
            next_timer_handle: 0,
            cancelled: HashSet::new(),
            stats: MediumStats::default(),
            dfa_stats: DfaStats::default(),
            commands: Vec::new(),
            receiver_scratch: Vec::new(),
            tracer: None,
            obs: None,
            faults: self.faults,
            fault_rng,
            fault_bad: Vec::new(),
        };
        let churn: Vec<ChurnEvent> = sim.faults.churn().to_vec();
        for event in churn {
            sim.schedule_set_alive(event.at, event.node, event.alive);
        }
        sim
    }
}

/// The simulation: clock, event queue, medium, topology, and all nodes.
pub struct Simulator<P> {
    now: SimTime,
    radio: RadioConfig,
    mac: MacConfig,
    topology: Topology,
    medium: Medium,
    rng: StdRng,
    nodes: Vec<NodeState<P>>,
    factory: Box<dyn FnMut(NodeId) -> P>,
    heap: BinaryHeap<Event>,
    event_seq: u64,
    next_timer_handle: u64,
    cancelled: HashSet<TimerHandle>,
    stats: MediumStats,
    dfa_stats: DfaStats,
    commands: Vec<Command>,
    /// Reused per-transmission receiver list; kept empty between
    /// `tx_end` calls so the steady state allocates nothing.
    receiver_scratch: Vec<NodeId>,
    tracer: Option<Tracer>,
    /// Pre-resolved metric handles; `None` (the default) is the
    /// provably zero-cost path — one branch per would-be recording.
    obs: Option<NetsimObs>,
    faults: FaultModel,
    /// Dedicated fault RNG stream; never consulted when the model has
    /// no channel, so fault-off runs keep the main stream untouched.
    fault_rng: StdRng,
    /// Per-receiver Gilbert–Elliott state (`true` = bad).
    fault_bad: Vec<bool>,
}

impl<P> core::fmt::Debug for Simulator<P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.heap.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<P: Protocol> Simulator<P> {
    /// Adds a node at `position` using the builder's protocol factory;
    /// its `on_start` runs at the current time.
    pub fn add_node_at(&mut self, position: Position) -> NodeId {
        let id = self.topology.add(position);
        let protocol = (self.factory)(id);
        self.push_node(id, protocol)
    }

    /// Adds a node with an explicitly constructed protocol instance.
    pub fn add_node_with(&mut self, position: Position, protocol: P) -> NodeId {
        let id = self.topology.add(position);
        self.push_node(id, protocol)
    }

    fn push_node(&mut self, id: NodeId, protocol: P) -> NodeId {
        self.nodes.push(NodeState {
            protocol,
            meter: EnergyMeter::new(),
            queue: VecDeque::new(),
            transmitting: false,
            duty_cycle: None,
            dfa_slot_at: None,
            dfa_frame_end: SimTime::ZERO,
        });
        self.fault_bad.push(false);
        let at = self.now;
        self.schedule(at, EventKind::NodeStart(id));
        id
    }

    /// Sets (or clears) a receiver duty cycle on a node. While the
    /// radio sleeps, frames addressed to it are lost as
    /// [`MediumStats::sleep_misses`] and cost it no receive energy.
    /// Transmission is unaffected — the node wakes to send.
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    pub fn set_duty_cycle(&mut self, node: NodeId, duty_cycle: Option<crate::radio::DutyCycle>) {
        self.nodes[node.index()].duty_cycle = duty_cycle;
    }

    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The radio model in use.
    #[must_use]
    pub fn radio(&self) -> &RadioConfig {
        &self.radio
    }

    /// The topology (positions, liveness, range).
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Medium-level counters.
    #[must_use]
    pub fn stats(&self) -> MediumStats {
        self.stats
    }

    /// Dynamic-Frame Aloha counters (all zero unless the MAC runs DFA).
    #[must_use]
    pub fn dfa_stats(&self) -> DfaStats {
        self.dfa_stats
    }

    /// Number of nodes added so far.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The protocol instance of a node, for post-run inspection.
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    #[must_use]
    pub fn protocol(&self, node: NodeId) -> &P {
        &self.nodes[node.index()].protocol
    }

    /// Mutable access to a node's protocol (e.g. to inject workload
    /// between runs).
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    pub fn protocol_mut(&mut self, node: NodeId) -> &mut P {
        &mut self.nodes[node.index()].protocol
    }

    /// A node's energy meter.
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    #[must_use]
    pub fn meter(&self, node: NodeId) -> &EnergyMeter {
        &self.nodes[node.index()].meter
    }

    /// Network-wide energy meter (sum over nodes).
    #[must_use]
    pub fn total_meter(&self) -> EnergyMeter {
        let mut total = EnergyMeter::new();
        for state in &self.nodes {
            total.merge(&state.meter);
        }
        total
    }

    /// How long a node's receiver has been awake so far: the full run
    /// time, scaled by its duty cycle if one is set.
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    #[must_use]
    pub fn awake_micros(&self, node: NodeId) -> u64 {
        let elapsed = self.now.as_micros();
        match self.nodes[node.index()].duty_cycle {
            Some(duty) => (elapsed as f64 * duty.on_fraction()) as u64,
            None => elapsed,
        }
    }

    /// A node's total radio energy so far in nanojoules, including idle
    /// listening for the time its receiver was awake.
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    #[must_use]
    pub fn energy_nj(&self, node: NodeId) -> f64 {
        self.nodes[node.index()]
            .meter
            .total_energy_with_idle_nj(&self.radio.energy, self.awake_micros(node))
    }

    /// Enables event tracing with a bounded ring buffer of `capacity`
    /// events (see [`crate::trace`]). Re-enabling resets the buffer.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Some(Tracer::new(capacity));
    }

    /// The tracer, if enabled.
    #[must_use]
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Attaches an observability handle (see [`retri_obs`]). When
    /// `obs` is enabled, the simulator registers its medium-level
    /// metrics (`netsim_*` counters, gauges, and the
    /// `netsim_tx_airtime` span) and records into them; when `obs` is
    /// disabled this is a no-op and the run stays on the zero-cost
    /// path. Recording never consults any RNG stream, so enabling
    /// observability cannot change simulation output.
    pub fn enable_obs(&mut self, obs: &Obs) {
        self.obs = obs.is_enabled().then(|| NetsimObs::new(obs));
    }

    /// Records a trace event only when tracing is enabled. The closure
    /// defers event construction, so untraced runs never build a
    /// [`TraceEvent`] at all.
    fn trace_with(&mut self, event: impl FnOnce() -> TraceEvent) {
        if let Some(tracer) = &mut self.tracer {
            tracer.record(event());
        }
    }

    /// Schedules a node to move at a future time (network dynamics).
    pub fn schedule_move(&mut self, at: SimTime, node: NodeId, to: Position) {
        self.schedule(at, EventKind::Move { node, to });
    }

    /// Schedules a node death (`false`) or rebirth (`true`).
    pub fn schedule_set_alive(&mut self, at: SimTime, node: NodeId, alive: bool) {
        self.schedule(at, EventKind::SetAlive { node, alive });
    }

    /// Runs all events up to and including `deadline`, then advances the
    /// clock to it.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(event) = self.heap.peek() {
            if event.at > deadline {
                break;
            }
            let event = self.heap.pop().expect("peeked above");
            self.dispatch(event);
        }
        self.now = self.now.max(deadline);
    }

    /// Runs a single event, returning its time, or `None` if the queue
    /// is empty.
    pub fn step(&mut self) -> Option<SimTime> {
        let event = self.heap.pop()?;
        let at = event.at;
        self.dispatch(event);
        Some(at)
    }

    fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.event_seq;
        self.event_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    fn dispatch(&mut self, event: Event) {
        debug_assert!(event.at >= self.now, "time must not run backwards");
        self.now = event.at;
        match event.kind {
            EventKind::NodeStart(node) => {
                if self.topology.is_alive(node) {
                    self.with_ctx(node, |protocol, ctx| protocol.on_start(ctx));
                }
            }
            EventKind::Timer { node, timer } => {
                // The is_empty guard skips the hash lookup when no
                // cancellation is pending — the common case.
                let cancelled = !self.cancelled.is_empty() && self.cancelled.remove(&timer.handle);
                if !cancelled && self.topology.is_alive(node) {
                    self.with_ctx(node, |protocol, ctx| protocol.on_timer(ctx, timer));
                }
            }
            EventKind::MacTry(node) => self.mac_try(node),
            EventKind::TxEnd { seq, node } => self.tx_end(seq, node),
            EventKind::Move { node, to } => {
                self.topology.set_position(node, to);
                let at = self.now;
                self.trace_with(|| TraceEvent::Moved { at, node, to });
            }
            EventKind::SetAlive { node, alive } => {
                self.topology.set_alive(node, alive);
                let at = self.now;
                self.trace_with(|| TraceEvent::Liveness { at, node, alive });
                if !alive {
                    let state = &mut self.nodes[node.index()];
                    state.queue.clear();
                    state.transmitting = false;
                    state.dfa_slot_at = None;
                    state.dfa_frame_end = SimTime::ZERO;
                } else {
                    // A reborn node boots afresh.
                    let at = self.now;
                    self.schedule(at, EventKind::NodeStart(node));
                }
            }
        }
        self.apply_commands();
    }

    fn with_ctx(&mut self, node: NodeId, f: impl FnOnce(&mut P, &mut Context<'_>)) {
        let state = &mut self.nodes[node.index()];
        let pending_frames = state.queue.len() + usize::from(state.transmitting);
        let mut ctx = Context {
            now: self.now,
            node,
            rng: &mut self.rng,
            commands: &mut self.commands,
            next_timer_handle: &mut self.next_timer_handle,
            max_frame_bytes: self.radio.max_frame_bytes,
            pending_frames,
        };
        f(&mut state.protocol, &mut ctx);
    }

    fn apply_commands(&mut self) {
        // Callbacks may enqueue more commands while earlier ones are
        // applied (not currently possible, but drain defensively).
        while !self.commands.is_empty() {
            let mut batch = std::mem::take(&mut self.commands);
            for command in batch.drain(..) {
                match command {
                    Command::Send { node, payload } => {
                        self.nodes[node.index()].queue.push_back(payload);
                        let at = self.now;
                        self.schedule(at, EventKind::MacTry(node));
                    }
                    Command::SetTimer { node, at, timer } => {
                        self.schedule(at, EventKind::Timer { node, timer });
                    }
                    Command::CancelTimer { handle } => {
                        self.cancelled.insert(handle);
                    }
                }
            }
            // Reuse the batch's capacity for future events: the steady
            // state enqueues and drains commands with no allocation.
            if self.commands.is_empty() {
                self.commands = batch;
            }
        }
    }

    /// DFA framing: commits the node to one uniformly drawn slot of its
    /// next frame (sized by the config, for `Estimated` from the
    /// protocol's live population estimate) and schedules the wakeup.
    /// Returns `true` when `mac_try` should transmit right now — the
    /// committed slot has arrived.
    fn dfa_frame_step(&mut self, node: NodeId, dfa: DfaConfig) -> bool {
        if let Some(slot_at) = self.nodes[node.index()].dfa_slot_at {
            if self.now == slot_at {
                return true;
            }
            if self.now < slot_at {
                // An early try (e.g. a freshly queued frame); the slot
                // wakeup is already on the heap.
                return false;
            }
            // A stale commitment from before the node's queue drained
            // or the node died; fall through and draw a fresh frame.
        }
        let estimate = match dfa.sizing {
            crate::mac::FrameSizing::Estimated => self.nodes[node.index()]
                .protocol
                .population_estimate(self.now),
            _ => None,
        };
        let slots = u64::from(dfa.frame_length(estimate));
        let state = &self.nodes[node.index()];
        // The frame starts at the next slot boundary after both `now`
        // and the previous frame's end, on the absolute slot grid every
        // node shares.
        let begin = self.now.max(state.dfa_frame_end);
        let frame_start = align_up(begin, dfa.slot);
        let slot_index = self.rng.gen_range(0..slots);
        let slot_at = frame_start + dfa.slot * slot_index;
        let frame_end = frame_start + dfa.slot * slots;
        let state = &mut self.nodes[node.index()];
        state.dfa_slot_at = Some(slot_at);
        state.dfa_frame_end = frame_end;
        self.dfa_stats.frames += 1;
        self.dfa_stats.slots += slots;
        self.schedule(slot_at, EventKind::MacTry(node));
        false
    }

    fn mac_try(&mut self, node: NodeId) {
        if !self.topology.is_alive(node) {
            return;
        }
        {
            let state = &self.nodes[node.index()];
            if state.transmitting || state.queue.is_empty() {
                return;
            }
        }
        if let Some(&dfa) = self.mac.dfa_config() {
            if !self.dfa_frame_step(node, dfa) {
                return;
            }
            self.nodes[node.index()].dfa_slot_at = None;
        } else if self.mac.carrier_sense && self.medium.busy_for(node, self.now, &self.topology) {
            let slots = u64::from(self.rng.gen_range(1..=self.mac.max_backoff_slots));
            if let Some(o) = &self.obs {
                o.mac_backoffs.inc();
                o.mac_backoff_slots.add(slots);
            }
            let at = self.now + self.mac.backoff_slot * slots;
            self.schedule(at, EventKind::MacTry(node));
            return;
        }
        let payload = self.nodes[node.index()]
            .queue
            .pop_front()
            .expect("checked non-empty above");
        let bits_on_air = self.radio.bits_on_air(payload.bits());
        let airtime = self.radio.airtime(payload.bits());
        let frame = Frame::new(node, payload);
        let end = self.now + airtime;
        let seq = self
            .medium
            .begin_tx(node, self.now, end, frame, bits_on_air);
        let state = &mut self.nodes[node.index()];
        state.transmitting = true;
        state.meter.record_tx(bits_on_air, airtime.as_micros());
        self.stats.frames_sent += 1;
        let at = self.now;
        self.trace_with(|| TraceEvent::TxStart {
            at,
            node,
            seq,
            bits: bits_on_air,
        });
        if let Some(o) = &mut self.obs {
            o.frames_sent.inc();
            o.tx_bits.add(bits_on_air);
            o.airtime_micros.add(airtime.as_micros());
            o.energy_tx_nj
                .shift(bits_on_air as f64 * self.radio.energy.tx_nj_per_bit);
            o.tx_span_start(seq, at.as_micros());
        }
        self.schedule(end, EventKind::TxEnd { seq, node });
    }

    fn tx_end(&mut self, seq: u64, node: NodeId) {
        self.nodes[node.index()].transmitting = false;
        // O(1) record lookup; takes the frame out of the record instead
        // of cloning it.
        let (frame, bits_on_air, tx_start, tx_end_at) = self.medium.end_tx(seq);
        if let Some(o) = &mut self.obs {
            o.tx_span_end(seq, tx_end_at.as_micros());
        }
        let rx_nj = bits_on_air as f64 * self.radio.energy.rx_nj_per_bit;
        // Receivers in deterministic id order, straight off the
        // adjacency cache into a reused scratch buffer.
        let mut receivers = std::mem::take(&mut self.receiver_scratch);
        receivers.extend(self.topology.neighbors(node));
        for &receiver in &receivers {
            // Draw before any filtering so the RNG stream is identical
            // across duty-cycle and fault configurations.
            let draw: f64 = self.rng.gen_range(0.0..1.0);
            if self.faults.severs(node, receiver, self.now) {
                self.stats.partition_losses += 1;
                if let Some(o) = &self.obs {
                    o.drop_for(LossReason::Partitioned);
                }
                let at = self.now;
                self.trace_with(|| TraceEvent::Lost {
                    at,
                    from: node,
                    to: receiver,
                    seq,
                    reason: LossReason::Partitioned,
                });
                continue;
            }
            if let Some(duty) = self.nodes[receiver.index()].duty_cycle {
                if !duty.awake_during(tx_start, tx_end_at) {
                    self.stats.sleep_misses += 1;
                    if let Some(o) = &self.obs {
                        o.drop_for(LossReason::Asleep);
                    }
                    let at = self.now;
                    self.trace_with(|| TraceEvent::Lost {
                        at,
                        from: node,
                        to: receiver,
                        seq,
                        reason: LossReason::Asleep,
                    });
                    continue;
                }
            }
            let verdict =
                self.medium
                    .judge(seq, receiver, draw, self.radio.frame_loss, &self.topology);
            let at = self.now;
            match verdict {
                Verdict::Failed(failure) => {
                    match failure {
                        DeliveryFailure::HalfDuplex => self.stats.half_duplex_losses += 1,
                        DeliveryFailure::RfCollision => {
                            self.nodes[receiver.index()]
                                .meter
                                .record_rx(bits_on_air, tx_end_at.since(tx_start).as_micros());
                            self.stats.rf_collisions += 1;
                        }
                        DeliveryFailure::RandomLoss => {
                            self.nodes[receiver.index()]
                                .meter
                                .record_rx(bits_on_air, tx_end_at.since(tx_start).as_micros());
                            self.stats.random_losses += 1;
                        }
                    }
                    if let Some(o) = &self.obs {
                        o.drop_for(failure.into());
                        if !matches!(failure, DeliveryFailure::HalfDuplex) {
                            o.energy_rx_nj.shift(rx_nj);
                        }
                    }
                    self.trace_with(|| TraceEvent::Lost {
                        at,
                        from: node,
                        to: receiver,
                        seq,
                        reason: failure.into(),
                    });
                }
                Verdict::Delivered => {
                    self.nodes[receiver.index()]
                        .meter
                        .record_rx(bits_on_air, tx_end_at.since(tx_start).as_micros());
                    if let Some(o) = &self.obs {
                        o.energy_rx_nj.shift(rx_nj);
                    }
                    // The fault channel judges the frame last, from its
                    // own RNG stream: erasure drops it, a positive BER
                    // may flip payload bits on a per-receiver copy.
                    let mut corrupted: Option<(Frame, u64)> = None;
                    if let Some(channel) = self.faults.channel() {
                        let fault = channel.judge_frame(
                            &mut self.fault_bad[receiver.index()],
                            &mut self.fault_rng,
                        );
                        if fault.erased {
                            self.stats.fault_erasures += 1;
                            if let Some(o) = &self.obs {
                                o.drop_for(LossReason::FaultErasure);
                            }
                            self.trace_with(|| TraceEvent::Lost {
                                at,
                                from: node,
                                to: receiver,
                                seq,
                                reason: LossReason::FaultErasure,
                            });
                            continue;
                        }
                        if fault.bit_error_rate > 0.0 {
                            let mut mangled = frame.clone();
                            let mut flipped = 0u64;
                            for bit in 0..mangled.payload.bits() {
                                if self.fault_rng.gen_range(0.0..1.0) < fault.bit_error_rate {
                                    mangled.payload.flip_bit(bit);
                                    flipped += 1;
                                }
                            }
                            if flipped > 0 {
                                corrupted = Some((mangled, flipped));
                            }
                        }
                    }
                    self.stats.deliveries += 1;
                    if let Some(o) = &self.obs {
                        o.deliveries.inc();
                    }
                    match corrupted {
                        Some((mangled, flipped)) => {
                            self.stats.corrupted_deliveries += 1;
                            self.stats.flipped_bits += flipped;
                            if let Some(o) = &self.obs {
                                o.corrupted_deliveries.inc();
                                o.flipped_bits.add(flipped);
                            }
                            self.trace_with(|| TraceEvent::Corrupted {
                                at,
                                from: node,
                                to: receiver,
                                seq,
                                flipped_bits: flipped,
                            });
                            self.with_ctx(receiver, |protocol, ctx| {
                                protocol.on_frame(ctx, &mangled);
                            });
                        }
                        None => {
                            self.trace_with(|| TraceEvent::Delivered {
                                at,
                                from: node,
                                to: receiver,
                                seq,
                            });
                            self.with_ctx(receiver, |protocol, ctx| protocol.on_frame(ctx, &frame));
                        }
                    }
                }
            }
        }
        receivers.clear();
        self.receiver_scratch = receivers;
        if self.mac.dfa_config().is_some() {
            // Sender-side DFA slot feedback: the transmission collided
            // iff a foreign audible transmission overlapped its airtime
            // (judged before pruning below can drop the evidence). A
            // collided frame re-contends in the node's next frame.
            let collided =
                self.medium
                    .interference_at(node, tx_start, tx_end_at, seq, &self.topology);
            if collided {
                self.dfa_stats.collisions += 1;
                if self.topology.is_alive(node) {
                    self.nodes[node.index()].queue.push_front(frame.payload);
                }
            } else {
                self.dfa_stats.successes += 1;
            }
            // Re-contend at the frame boundary, not after an ifs: DFA
            // paces itself by frames.
            let at = self.nodes[node.index()].dfa_frame_end.max(self.now);
            self.schedule(at, EventKind::MacTry(node));
        } else {
            // Next frame, after the inter-frame space.
            let at = self.now + self.mac.ifs;
            self.schedule(at, EventKind::MacTry(node));
        }
        // Garbage-collect records that can no longer affect judgments:
        // anything that ended more than two max-size airtimes ago.
        let slack = self.radio.airtime(self.radio.max_frame_bytes as u32 * 8) * 2;
        let horizon = SimTime::from_micros(self.now.as_micros().saturating_sub(slack.as_micros()));
        self.medium.prune(horizon);
    }
}

/// The next multiple of `slot` at or after `t` — the absolute slot grid
/// every DFA node aligns its frames to.
pub(crate) fn align_up(t: SimTime, slot: crate::time::SimDuration) -> SimTime {
    let step = slot.as_micros();
    debug_assert!(step > 0, "validated by MacConfig::validate");
    SimTime::from_micros(t.as_micros().div_ceil(step) * step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Sends `to_send` frames at start; counts frames heard.
    struct Chatter {
        to_send: u32,
        heard: u32,
        payload_bytes: usize,
    }

    impl Protocol for Chatter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.to_send {
                ctx.send(FramePayload::from_bytes(vec![0xAA; self.payload_bytes]).unwrap())
                    .unwrap();
            }
        }
        fn on_frame(&mut self, _ctx: &mut Context<'_>, _frame: &Frame) {
            self.heard += 1;
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_>, _timer: Timer) {}
    }

    fn two_node_sim(seed: u64) -> Simulator<Chatter> {
        let mut sim = SimBuilder::new(seed).build(|id| Chatter {
            to_send: if id == NodeId(0) { 3 } else { 0 },
            heard: 0,
            payload_bytes: 10,
        });
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(10.0, 0.0));
        sim
    }

    #[test]
    fn frames_are_delivered_in_range() {
        let mut sim = two_node_sim(1);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.protocol(NodeId(1)).heard, 3);
        assert_eq!(sim.stats().frames_sent, 3);
        assert_eq!(sim.stats().deliveries, 3);
    }

    #[test]
    fn runs_are_reproducible() {
        let mut a = two_node_sim(7);
        let mut b = two_node_sim(7);
        a.run_until(SimTime::from_secs(2));
        b.run_until(SimTime::from_secs(2));
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.meter(NodeId(0)), b.meter(NodeId(0)));
    }

    #[test]
    fn out_of_range_nodes_hear_nothing() {
        let mut sim = SimBuilder::new(2).range(50.0).build(|id| Chatter {
            to_send: if id == NodeId(0) { 2 } else { 0 },
            heard: 0,
            payload_bytes: 5,
        });
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(500.0, 0.0));
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.protocol(NodeId(1)).heard, 0);
        assert_eq!(sim.stats().deliveries, 0);
    }

    #[test]
    fn csma_serializes_mutually_audible_senders() {
        // Two senders in range of each other and of a receiver: carrier
        // sense + random backoff should avoid almost all collisions.
        let mut sim = SimBuilder::new(3)
            .mac(MacConfig::csma())
            .build(|id| Chatter {
                to_send: if id != NodeId(2) { 20 } else { 0 },
                heard: 0,
                payload_bytes: 27,
            });
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(10.0, 0.0));
        sim.add_node_at(Position::new(5.0, 5.0));
        sim.run_until(SimTime::from_secs(30));
        let heard = sim.protocol(NodeId(2)).heard;
        assert!(heard >= 38, "receiver heard only {heard}/40");
    }

    #[test]
    fn hidden_terminals_collide_despite_csma() {
        let mut sim = SimBuilder::new(4).range(100.0).build(|id| Chatter {
            // Both far senders chatter; the middle node listens.
            to_send: if id != NodeId(1) { 40 } else { 0 },
            heard: 0,
            payload_bytes: 27,
        });
        sim.add_node_at(Position::new(-90.0, 0.0));
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(90.0, 0.0));
        sim.run_until(SimTime::from_secs(10));
        assert!(
            sim.stats().rf_collisions > 0,
            "hidden terminals must produce RF collisions: {}",
            sim.stats()
        );
    }

    #[test]
    fn random_loss_drops_frames() {
        let mut sim = SimBuilder::new(5)
            .radio(RadioConfig::radiometrix_rpc().with_frame_loss(1.0))
            .build(|id| Chatter {
                to_send: if id == NodeId(0) { 5 } else { 0 },
                heard: 0,
                payload_bytes: 5,
            });
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(10.0, 0.0));
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.protocol(NodeId(1)).heard, 0);
        assert_eq!(sim.stats().random_losses, 5);
    }

    #[test]
    fn energy_meters_account_tx_and_rx() {
        let mut sim = two_node_sim(6);
        sim.run_until(SimTime::from_secs(2));
        let sender = sim.meter(NodeId(0));
        let receiver = sim.meter(NodeId(1));
        let bits_per_frame = sim.radio().bits_on_air(80); // 10-byte payload
        assert_eq!(sender.tx_bits(), 3 * bits_per_frame);
        assert_eq!(receiver.rx_bits(), 3 * bits_per_frame);
        assert_eq!(sim.total_meter().tx_bits(), 3 * bits_per_frame);
    }

    #[test]
    fn dead_node_neither_sends_nor_receives() {
        let mut sim = two_node_sim(7);
        sim.schedule_set_alive(SimTime::ZERO, NodeId(1), false);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.protocol(NodeId(1)).heard, 0);
        assert_eq!(sim.stats().deliveries, 0);
    }

    #[test]
    fn movement_breaks_connectivity_mid_run() {
        let mut sim = SimBuilder::new(8).range(50.0).build(|_| Chatter {
            to_send: 0,
            heard: 0,
            payload_bytes: 5,
        });
        let a = sim.add_node_at(Position::new(0.0, 0.0));
        let b = sim.add_node_at(Position::new(10.0, 0.0));
        // Move b away after 1 s, then have a send.
        sim.schedule_move(SimTime::from_secs(1), b, Position::new(400.0, 0.0));
        sim.run_until(SimTime::from_secs(2));
        sim.protocol_mut(a).to_send = 0;
        // Inject a send at t=2 via a protocol-side path: simplest is a
        // fresh node; instead drive the MAC directly by re-adding
        // payloads through on_start of a new node at a's position.
        let c = sim.add_node_with(
            Position::new(0.0, 0.0),
            Chatter {
                to_send: 2,
                heard: 0,
                payload_bytes: 5,
            },
        );
        sim.run_until(SimTime::from_secs(4));
        let _ = c;
        assert_eq!(sim.protocol(b).heard, 0, "moved node must not hear");
        // a (still at origin) hears the new sender.
        assert_eq!(sim.protocol(a).heard, 2);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerProto {
            fired: Vec<u64>,
        }
        impl Protocol for TimerProto {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
                let cancel_me = ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.set_timer(SimDuration::from_millis(30), 3);
                ctx.cancel_timer(cancel_me);
            }
            fn on_frame(&mut self, _ctx: &mut Context<'_>, _frame: &Frame) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_>, timer: Timer) {
                self.fired.push(timer.token);
            }
        }
        let mut sim = SimBuilder::new(9).build(|_| TimerProto { fired: Vec::new() });
        let n = sim.add_node_at(Position::new(0.0, 0.0));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.protocol(n).fired, vec![1, 3]);
    }

    #[test]
    fn duty_cycled_receiver_misses_frames_while_asleep() {
        use crate::radio::DutyCycle;
        // Sender streams frames; receiver listens 10% of each 100 ms.
        let mut sim = SimBuilder::new(21).build(|id| Chatter {
            to_send: if id == NodeId(0) { 40 } else { 0 },
            heard: 0,
            payload_bytes: 27,
        });
        sim.add_node_at(Position::new(0.0, 0.0));
        let rx = sim.add_node_at(Position::new(10.0, 0.0));
        sim.set_duty_cycle(
            rx,
            Some(DutyCycle::new(
                SimDuration::from_millis(100),
                0.1,
                SimDuration::ZERO,
            )),
        );
        sim.run_until(SimTime::from_secs(10));
        let stats = sim.stats();
        assert!(stats.sleep_misses > 0, "{stats}");
        assert!(
            sim.protocol(rx).heard < 40,
            "a 10% duty cycle cannot hear everything"
        );
        assert_eq!(
            stats.deliveries
                + stats.sleep_misses
                + stats.rf_collisions
                + stats.half_duplex_losses
                + stats.random_losses,
            40,
            "every attempt lands in exactly one bucket: {stats}"
        );
        // Sleeping saves receive energy.
        let bits_per_frame = sim.radio().bits_on_air(27 * 8);
        assert!(sim.meter(rx).rx_bits() < 40 * bits_per_frame);
    }

    #[test]
    fn full_duty_cycle_hears_everything() {
        use crate::radio::DutyCycle;
        let mut sim = two_node_sim(22);
        sim.set_duty_cycle(
            NodeId(1),
            Some(DutyCycle::new(
                SimDuration::from_millis(50),
                1.0,
                SimDuration::ZERO,
            )),
        );
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.protocol(NodeId(1)).heard, 3);
        assert_eq!(sim.stats().sleep_misses, 0);
    }

    #[test]
    fn tracer_records_transmissions_and_outcomes() {
        use crate::trace::TraceEvent;
        let mut sim = two_node_sim(30);
        sim.enable_trace(1024);
        sim.run_until(SimTime::from_secs(2));
        let tracer = sim.tracer().expect("enabled above");
        let tx_starts = tracer
            .events()
            .filter(|e| matches!(e, TraceEvent::TxStart { .. }))
            .count();
        assert_eq!(tx_starts as u64, sim.stats().frames_sent);
        assert_eq!(
            tracer.deliveries_between(NodeId(0), NodeId(1)) as u64,
            sim.stats().deliveries
        );
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn tracer_records_losses_with_reasons() {
        use crate::trace::{LossReason, TraceEvent};
        let mut sim = SimBuilder::new(31)
            .radio(RadioConfig::radiometrix_rpc().with_frame_loss(1.0))
            .build(|id| Chatter {
                to_send: if id == NodeId(0) { 3 } else { 0 },
                heard: 0,
                payload_bytes: 5,
            });
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(10.0, 0.0));
        sim.enable_trace(64);
        sim.run_until(SimTime::from_secs(2));
        let tracer = sim.tracer().expect("enabled above");
        let random_losses = tracer
            .events()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Lost {
                        reason: LossReason::RandomLoss,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(random_losses, 3);
    }

    #[test]
    fn tracer_records_dynamics() {
        use crate::trace::TraceEvent;
        let mut sim = two_node_sim(32);
        sim.enable_trace(64);
        sim.schedule_set_alive(SimTime::from_millis(100), NodeId(1), false);
        sim.schedule_move(
            SimTime::from_millis(200),
            NodeId(1),
            Position::new(99.0, 0.0),
        );
        sim.run_until(SimTime::from_secs(1));
        let tracer = sim.tracer().expect("enabled above");
        assert!(tracer.events().any(|e| matches!(
            e,
            TraceEvent::Liveness {
                node: NodeId(1),
                alive: false,
                ..
            }
        )));
        assert!(tracer.events().any(|e| matches!(
            e,
            TraceEvent::Moved {
                node: NodeId(1),
                ..
            }
        )));
    }

    #[test]
    fn step_returns_event_times_in_order() {
        let mut sim = two_node_sim(10);
        let mut last = SimTime::ZERO;
        while let Some(at) = sim.step() {
            assert!(at >= last);
            last = at;
        }
        assert!(sim.stats().frames_sent > 0);
    }

    #[test]
    fn fault_off_is_byte_identical_to_no_fault_model() {
        use crate::fault::FaultModel;
        let mut base = two_node_sim(7);
        let mut with_none = SimBuilder::new(7)
            .faults(FaultModel::none())
            .build(|id| Chatter {
                to_send: if id == NodeId(0) { 3 } else { 0 },
                heard: 0,
                payload_bytes: 10,
            });
        with_none.add_node_at(Position::new(0.0, 0.0));
        with_none.add_node_at(Position::new(10.0, 0.0));
        base.run_until(SimTime::from_secs(2));
        with_none.run_until(SimTime::from_secs(2));
        assert_eq!(base.stats(), with_none.stats());
        assert_eq!(base.meter(NodeId(0)), with_none.meter(NodeId(0)));
        assert_eq!(base.meter(NodeId(1)), with_none.meter(NodeId(1)));
        assert_eq!(
            base.protocol(NodeId(1)).heard,
            with_none.protocol(NodeId(1)).heard
        );
    }

    #[test]
    fn fault_erasure_drops_frames_without_touching_the_main_stream() {
        use crate::fault::{ChannelState, FaultModel, GilbertElliott};
        let erase_all = FaultModel::none().with_channel(GilbertElliott::iid(ChannelState {
            bit_error_rate: 0.0,
            frame_erasure: 1.0,
        }));
        let mut base = two_node_sim(13);
        let mut faulty = SimBuilder::new(13).faults(erase_all).build(|id| Chatter {
            to_send: if id == NodeId(0) { 3 } else { 0 },
            heard: 0,
            payload_bytes: 10,
        });
        faulty.add_node_at(Position::new(0.0, 0.0));
        faulty.add_node_at(Position::new(10.0, 0.0));
        base.run_until(SimTime::from_secs(2));
        faulty.run_until(SimTime::from_secs(2));
        assert_eq!(faulty.protocol(NodeId(1)).heard, 0);
        assert_eq!(faulty.stats().fault_erasures, 3);
        assert_eq!(faulty.stats().deliveries, 0);
        // The main RNG stream must be untouched by fault draws: the MAC
        // schedule, and hence the sender's meter, match the clean run.
        assert_eq!(base.stats().frames_sent, faulty.stats().frames_sent);
        assert_eq!(base.meter(NodeId(0)), faulty.meter(NodeId(0)));
    }

    #[test]
    fn bit_errors_corrupt_deliveries_and_are_traced() {
        use crate::fault::{ChannelState, FaultModel, GilbertElliott};
        use crate::trace::TraceEvent;
        // BER 1.0 flips every payload bit: frames still arrive, but
        // every delivery is counted and traced as corrupted.
        let flip_all = FaultModel::none().with_channel(GilbertElliott::iid(ChannelState {
            bit_error_rate: 1.0,
            frame_erasure: 0.0,
        }));
        let mut sim = SimBuilder::new(14).faults(flip_all).build(|id| Chatter {
            to_send: if id == NodeId(0) { 3 } else { 0 },
            heard: 0,
            payload_bytes: 10,
        });
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(10.0, 0.0));
        sim.enable_trace(64);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.protocol(NodeId(1)).heard, 3);
        let stats = sim.stats();
        assert_eq!(stats.deliveries, 3);
        assert_eq!(stats.corrupted_deliveries, 3);
        assert_eq!(stats.flipped_bits, 3 * 80);
        let corrupted = sim
            .tracer()
            .expect("enabled above")
            .events()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Corrupted {
                        flipped_bits: 80,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(corrupted, 3);
    }

    #[test]
    fn partition_window_severs_cross_group_frames() {
        use crate::fault::{FaultModel, PartitionWindow};
        use crate::trace::{LossReason, TraceEvent};
        // The sender bursts 40 back-to-back frames (~7 ms each); the
        // first 100 ms are partitioned, so early frames are severed and
        // later ones delivered.
        let faults = FaultModel::none().with_partition(PartitionWindow::new(
            SimTime::ZERO,
            SimTime::from_millis(100),
            vec![NodeId(0)],
        ));
        let mut sim = SimBuilder::new(15).faults(faults).build(|id| Chatter {
            to_send: if id == NodeId(0) { 40 } else { 0 },
            heard: 0,
            payload_bytes: 27,
        });
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(10.0, 0.0));
        sim.enable_trace(128);
        sim.run_until(SimTime::from_secs(10));
        let stats = sim.stats();
        assert!(stats.partition_losses > 0, "{stats}");
        assert!(stats.deliveries > 0, "{stats}");
        assert_eq!(stats.partition_losses + stats.deliveries, 40, "{stats}");
        assert_eq!(
            sim.protocol(NodeId(1)).heard as u64,
            stats.deliveries,
            "partitioned frames never reach the protocol"
        );
        assert!(sim.tracer().expect("enabled above").events().any(|e| {
            matches!(
                e,
                TraceEvent::Lost {
                    reason: LossReason::Partitioned,
                    ..
                }
            )
        }));
    }

    #[test]
    fn fault_model_churn_kills_and_revives_on_schedule() {
        use crate::fault::FaultModel;
        // The receiver dies before any frame lands and revives at
        // 100 ms, partway through the sender's ~300 ms burst.
        let faults = FaultModel::none()
            .with_churn_event(SimTime::from_micros(1), NodeId(1), false)
            .with_churn_event(SimTime::from_millis(100), NodeId(1), true);
        let mut sim = SimBuilder::new(16).faults(faults).build(|id| Chatter {
            to_send: if id == NodeId(0) { 40 } else { 0 },
            heard: 0,
            payload_bytes: 27,
        });
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(10.0, 0.0));
        sim.run_until(SimTime::from_secs(10));
        let heard = sim.protocol(NodeId(1)).heard;
        assert!(heard > 0, "revived node must hear again");
        assert!(heard < 40, "dead interval must cost frames: {heard}");
    }

    #[test]
    fn every_attempt_lands_in_exactly_one_bucket_under_faults() {
        use crate::fault::{ChannelState, FaultModel, GilbertElliott, PartitionWindow};
        let faults = FaultModel::none()
            .with_channel(GilbertElliott::bursty(
                ChannelState::clean(),
                ChannelState {
                    bit_error_rate: 0.01,
                    frame_erasure: 0.5,
                },
                0.2,
                0.3,
            ))
            .with_partition(PartitionWindow::new(
                SimTime::from_millis(100),
                SimTime::from_millis(250),
                vec![NodeId(0)],
            ));
        let mut sim = SimBuilder::new(17).faults(faults).build(|id| Chatter {
            to_send: if id == NodeId(0) { 60 } else { 0 },
            heard: 0,
            payload_bytes: 27,
        });
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(10.0, 0.0));
        sim.run_until(SimTime::from_secs(20));
        let stats = sim.stats();
        assert!(stats.fault_erasures > 0, "{stats}");
        assert!(stats.partition_losses > 0, "{stats}");
        assert_eq!(
            stats.deliveries
                + stats.sleep_misses
                + stats.rf_collisions
                + stats.half_duplex_losses
                + stats.random_losses
                + stats.fault_erasures
                + stats.partition_losses,
            60,
            "every attempt lands in exactly one bucket: {stats}"
        );
        assert!(
            stats.corrupted_deliveries <= stats.deliveries,
            "corruption is a flavor of delivery, not a loss: {stats}"
        );
    }

    #[test]
    fn obs_counters_match_medium_stats() {
        use crate::fault::{ChannelState, FaultModel, GilbertElliott};
        let faults = FaultModel::none().with_channel(GilbertElliott::iid(ChannelState {
            bit_error_rate: 0.001,
            frame_erasure: 0.3,
        }));
        let obs = Obs::enabled();
        let mut sim = SimBuilder::new(40).faults(faults).build(|id| Chatter {
            to_send: if id == NodeId(0) { 30 } else { 0 },
            heard: 0,
            payload_bytes: 27,
        });
        sim.enable_obs(&obs);
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(10.0, 0.0));
        sim.run_until(SimTime::from_secs(20));
        let stats = sim.stats();
        let snap = obs.snapshot().expect("enabled");
        assert_eq!(snap.counter("netsim_frames_sent_total"), stats.frames_sent);
        assert_eq!(snap.counter("netsim_deliveries_total"), stats.deliveries);
        assert_eq!(
            snap.counter_with("netsim_drops_total", &[("reason", "fault_erasure")]),
            Some(stats.fault_erasures)
        );
        assert_eq!(
            snap.counter("netsim_corrupted_deliveries_total"),
            stats.corrupted_deliveries
        );
        assert_eq!(
            snap.counter("netsim_flipped_bits_total"),
            stats.flipped_bits
        );
        // Airtime counter and completed spans agree with frames sent.
        assert_eq!(
            snap.counter("netsim_tx_airtime_completed_total"),
            stats.frames_sent
        );
        let spans = snap
            .histogram_with("netsim_tx_airtime_micros", &[])
            .expect("span histogram registered");
        assert_eq!(spans.count(), stats.frames_sent);
        assert!(
            (spans.sum() - snap.counter("netsim_airtime_micros_total") as f64).abs() < 1e-6,
            "span durations must sum to total airtime"
        );
        // Energy gauges agree with the meters.
        let total = sim.total_meter();
        assert!(
            (snap.gauge("netsim_energy_tx_nj") - total.tx_energy_nj(&sim.radio().energy)).abs()
                < 1e-6
        );
        assert!(
            (snap.gauge("netsim_energy_rx_nj") - total.rx_energy_nj(&sim.radio().energy)).abs()
                < 1e-6
        );
    }

    #[test]
    fn obs_on_run_is_identical_to_obs_off() {
        // Metrics are pure observations: the RNG streams, stats, and
        // meters of an observed run must equal the unobserved run.
        let mut plain = two_node_sim(41);
        let mut observed = two_node_sim(41);
        let obs = Obs::enabled();
        observed.enable_obs(&obs);
        plain.run_until(SimTime::from_secs(2));
        observed.run_until(SimTime::from_secs(2));
        assert_eq!(plain.stats(), observed.stats());
        assert_eq!(plain.meter(NodeId(0)), observed.meter(NodeId(0)));
        assert_eq!(plain.meter(NodeId(1)), observed.meter(NodeId(1)));
        assert_eq!(
            plain.protocol(NodeId(1)).heard,
            observed.protocol(NodeId(1)).heard
        );
        // And attaching a *disabled* handle stays on the None path.
        let mut disabled = two_node_sim(41);
        disabled.enable_obs(&Obs::disabled());
        disabled.run_until(SimTime::from_secs(2));
        assert_eq!(plain.stats(), disabled.stats());
    }

    #[test]
    fn backoff_metrics_count_carrier_sense_deferrals() {
        let obs = Obs::enabled();
        let mut sim = SimBuilder::new(42)
            .mac(MacConfig::csma())
            .build(|id| Chatter {
                to_send: if id != NodeId(2) { 20 } else { 0 },
                heard: 0,
                payload_bytes: 27,
            });
        sim.enable_obs(&obs);
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.add_node_at(Position::new(10.0, 0.0));
        sim.add_node_at(Position::new(5.0, 5.0));
        sim.run_until(SimTime::from_secs(30));
        let snap = obs.snapshot().expect("enabled");
        let backoffs = snap.counter("netsim_mac_backoffs_total");
        let slots = snap.counter("netsim_mac_backoff_slots_total");
        assert!(backoffs > 0, "two saturating senders must defer");
        assert!(slots >= backoffs, "every backoff waits at least one slot");
    }

    #[test]
    fn oversized_send_is_rejected_at_send_time() {
        struct BigSender {
            result: Option<Result<(), crate::frame::FrameError>>,
        }
        impl Protocol for BigSender {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let payload = FramePayload::from_bytes(vec![0; 28]).unwrap();
                self.result = Some(ctx.send(payload));
            }
            fn on_frame(&mut self, _ctx: &mut Context<'_>, _frame: &Frame) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_>, _timer: Timer) {}
        }
        let mut sim = SimBuilder::new(11).build(|_| BigSender { result: None });
        let n = sim.add_node_at(Position::new(0.0, 0.0));
        sim.run_until(SimTime::from_millis(1));
        assert!(matches!(
            sim.protocol(n).result,
            Some(Err(crate::frame::FrameError::TooLarge { .. }))
        ));
        assert_eq!(sim.stats().frames_sent, 0);
    }
}
