//! Observability wiring for the simulator.
//!
//! [`NetsimObs`] holds pre-resolved [`retri_obs`] handles for every
//! medium-level metric, so the per-event cost when observability is on
//! is one atomic update on a pre-resolved cell, and the cost when it
//! is off is nothing at all: the simulator stores `Option<NetsimObs>` and a
//! disabled run never constructs one (see
//! [`Simulator::enable_obs`](crate::sim::Simulator::enable_obs)).
//!
//! Metrics are pure observations: no recording call touches the main
//! or fault RNG streams, so enabling observability can never change
//! simulation output. `sim.rs` proves this with an obs-on-equals-
//! obs-off stats test.

use retri_obs::{Counter, Gauge, Obs, SpanTracker};

use crate::trace::LossReason;

/// Bucket bounds (simulated micros) for transmission airtime spans:
/// geometric from 100 µs to ~1.6 s, covering every radio model in the
/// workspace.
const TX_SPAN_BOUNDS: [f64; 8] = [
    100.0,
    400.0,
    1_600.0,
    6_400.0,
    25_600.0,
    102_400.0,
    409_600.0,
    1_638_400.0,
];

/// Pre-resolved metric handles for one simulator.
pub(crate) struct NetsimObs {
    /// `netsim_frames_sent_total`.
    pub frames_sent: Counter,
    /// `netsim_tx_bits_total` — bits on the air (payload + preamble).
    pub tx_bits: Counter,
    /// `netsim_airtime_micros_total` — cumulative transmission time.
    pub airtime_micros: Counter,
    /// `netsim_deliveries_total` (includes corrupted deliveries).
    pub deliveries: Counter,
    /// `netsim_corrupted_deliveries_total`.
    pub corrupted_deliveries: Counter,
    /// `netsim_flipped_bits_total`.
    pub flipped_bits: Counter,
    /// `netsim_drops_total{reason=…}`, indexed by [`LossReason`].
    drops: [Counter; LossReason::ALL.len()],
    /// `netsim_mac_backoffs_total` — CSMA carrier-sense deferrals.
    pub mac_backoffs: Counter,
    /// `netsim_mac_backoff_slots_total` — slots waited across backoffs.
    pub mac_backoff_slots: Counter,
    /// `netsim_energy_tx_nj` — network-wide transmit energy gauge.
    pub energy_tx_nj: Gauge,
    /// `netsim_energy_rx_nj` — network-wide receive energy gauge.
    pub energy_rx_nj: Gauge,
    /// `netsim_tx_airtime_*` span per medium sequence number.
    tx_spans: SpanTracker,
}

impl NetsimObs {
    /// Registers every simulator metric on `obs` (which must be
    /// enabled — callers gate on [`Obs::is_enabled`]).
    pub fn new(obs: &Obs) -> Self {
        let drops = LossReason::ALL
            .map(|reason| obs.counter("netsim_drops_total", &[("reason", reason.label())]));
        let tx_spans = SpanTracker::register(obs, "netsim_tx_airtime", &[], &TX_SPAN_BOUNDS);
        NetsimObs {
            frames_sent: obs.counter("netsim_frames_sent_total", &[]),
            tx_bits: obs.counter("netsim_tx_bits_total", &[]),
            airtime_micros: obs.counter("netsim_airtime_micros_total", &[]),
            deliveries: obs.counter("netsim_deliveries_total", &[]),
            corrupted_deliveries: obs.counter("netsim_corrupted_deliveries_total", &[]),
            flipped_bits: obs.counter("netsim_flipped_bits_total", &[]),
            drops,
            mac_backoffs: obs.counter("netsim_mac_backoffs_total", &[]),
            mac_backoff_slots: obs.counter("netsim_mac_backoff_slots_total", &[]),
            energy_tx_nj: obs.gauge("netsim_energy_tx_nj", &[]),
            energy_rx_nj: obs.gauge("netsim_energy_rx_nj", &[]),
            tx_spans,
        }
    }

    /// Counts one per-receiver drop with its reason.
    #[inline]
    pub fn drop_for(&self, reason: LossReason) {
        self.drops[reason.index()].inc();
    }

    /// Opens the airtime span for medium sequence `seq`.
    pub fn tx_span_start(&mut self, seq: u64, at_micros: u64) {
        self.tx_spans.start(seq, at_micros);
    }

    /// Closes the airtime span for medium sequence `seq`.
    pub fn tx_span_end(&mut self, seq: u64, at_micros: u64) {
        self.tx_spans.end(seq, at_micros);
    }
}
