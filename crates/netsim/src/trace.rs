//! Event tracing for debugging and analysis.
//!
//! A [`Tracer`] is an optional bounded ring buffer of medium-level
//! events — transmissions, per-receiver delivery outcomes, topology
//! changes. Protocol authors use it to answer "what actually happened
//! on the air?" without instrumenting their own code, and tests use it
//! to assert fine-grained causality that the aggregate
//! [`crate::sim::MediumStats`] cannot express.
//!
//! Alongside the ring buffer the tracer maintains an *index* in a
//! [`retri_obs::Registry`]: monotonic recorded/evicted counters per
//! `(from, to)` delivery pair and per-receiver loss lists, so the
//! query methods ([`Tracer::deliveries_between`],
//! [`Tracer::losses_at`]) answer from the index instead of scanning
//! every retained event. The public semantics are unchanged — both
//! still describe the *retained window* — the linear scans are gone.
//!
//! Tracing is off by default (zero cost); enable it with
//! [`crate::sim::Simulator::enable_trace`].

use std::collections::{HashMap, VecDeque};

use retri_obs::{CounterId, Registry, Snapshot};

use crate::medium::DeliveryFailure;
use crate::node::NodeId;
use crate::time::SimTime;
use crate::topology::Position;

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A node began transmitting a frame.
    TxStart {
        /// When.
        at: SimTime,
        /// Transmitting node.
        node: NodeId,
        /// Medium sequence number of the transmission.
        seq: u64,
        /// Bits on the air (payload + preamble).
        bits: u64,
    },
    /// A receiver got the frame.
    Delivered {
        /// When (transmission end).
        at: SimTime,
        /// Transmitting node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Medium sequence number.
        seq: u64,
    },
    /// A receiver got the frame, but the fault channel flipped payload
    /// bits in transit: what arrived is not what was sent. Whether the
    /// corruption is *detected* is up to the protocol's decoder (for
    /// AFF, `wire` parsing and the CRC-16 verdict).
    Corrupted {
        /// When (transmission end).
        at: SimTime,
        /// Transmitting node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Medium sequence number.
        seq: u64,
        /// How many payload bits were flipped.
        flipped_bits: u64,
    },
    /// A receiver in range did not get the frame.
    Lost {
        /// When (transmission end).
        at: SimTime,
        /// Transmitting node.
        from: NodeId,
        /// The receiver that missed it.
        to: NodeId,
        /// Medium sequence number.
        seq: u64,
        /// Why.
        reason: LossReason,
    },
    /// A node's liveness changed.
    Liveness {
        /// When.
        at: SimTime,
        /// The node.
        node: NodeId,
        /// New state.
        alive: bool,
    },
    /// A node moved.
    Moved {
        /// When.
        at: SimTime,
        /// The node.
        node: NodeId,
        /// New position.
        to: Position,
    },
}

/// Why a frame was not delivered to a particular receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossReason {
    /// Overlapping audible transmission.
    RfCollision,
    /// The receiver's own radio was transmitting.
    HalfDuplex,
    /// Independent random frame loss.
    RandomLoss,
    /// The receiver's radio was duty-cycled off.
    Asleep,
    /// The fault channel erased the whole frame.
    FaultErasure,
    /// A fault-model partition window severed the link.
    Partitioned,
}

impl LossReason {
    /// Every variant, in a fixed order (also the metric-label order).
    pub const ALL: [LossReason; 6] = [
        LossReason::RfCollision,
        LossReason::HalfDuplex,
        LossReason::RandomLoss,
        LossReason::Asleep,
        LossReason::FaultErasure,
        LossReason::Partitioned,
    ];

    /// The snake_case metric-label value for this reason.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LossReason::RfCollision => "rf_collision",
            LossReason::HalfDuplex => "half_duplex",
            LossReason::RandomLoss => "random_loss",
            LossReason::Asleep => "asleep",
            LossReason::FaultErasure => "fault_erasure",
            LossReason::Partitioned => "partitioned",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            LossReason::RfCollision => 0,
            LossReason::HalfDuplex => 1,
            LossReason::RandomLoss => 2,
            LossReason::Asleep => 3,
            LossReason::FaultErasure => 4,
            LossReason::Partitioned => 5,
        }
    }
}

impl From<DeliveryFailure> for LossReason {
    fn from(failure: DeliveryFailure) -> Self {
        match failure {
            DeliveryFailure::RfCollision => LossReason::RfCollision,
            DeliveryFailure::HalfDuplex => LossReason::HalfDuplex,
            DeliveryFailure::RandomLoss => LossReason::RandomLoss,
        }
    }
}

/// A bounded ring buffer of [`TraceEvent`]s with an indexed side table.
///
/// When full, the oldest events are discarded (and counted), so a
/// long-running simulation cannot exhaust memory through its tracer.
/// The index stays consistent with the window: recorded and evicted
/// counters both only grow (they live in a [`Registry`]), and a
/// window count is always `recorded - evicted`.
#[derive(Debug)]
pub struct Tracer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    /// Total events ever recorded; the ordinal of the next event.
    recorded: u64,
    registry: Registry,
    delivered: HashMap<(NodeId, NodeId), CounterId>,
    delivered_evicted: HashMap<(NodeId, NodeId), CounterId>,
    losses: HashMap<NodeId, CounterId>,
    losses_evicted: HashMap<NodeId, CounterId>,
    /// Ordinals of retained `Lost` events, per receiver, oldest first.
    loss_ordinals: HashMap<NodeId, VecDeque<u64>>,
}

impl Tracer {
    /// Creates a tracer retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be positive");
        Tracer {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            recorded: 0,
            registry: Registry::new(),
            delivered: HashMap::new(),
            delivered_evicted: HashMap::new(),
            losses: HashMap::new(),
            losses_evicted: HashMap::new(),
            loss_ordinals: HashMap::new(),
        }
    }

    fn delivered_id(&mut self, from: NodeId, to: NodeId, evicted: bool) -> CounterId {
        let (cache, name) = if evicted {
            (
                &mut self.delivered_evicted,
                "netsim_trace_deliveries_evicted_total",
            )
        } else {
            (&mut self.delivered, "netsim_trace_deliveries_total")
        };
        *cache.entry((from, to)).or_insert_with(|| {
            self.registry.counter(
                name,
                &[
                    ("from", &from.index().to_string()),
                    ("to", &to.index().to_string()),
                ],
            )
        })
    }

    fn loss_id(&mut self, to: NodeId, evicted: bool) -> CounterId {
        let (cache, name) = if evicted {
            (
                &mut self.losses_evicted,
                "netsim_trace_losses_evicted_total",
            )
        } else {
            (&mut self.losses, "netsim_trace_losses_total")
        };
        *cache.entry(to).or_insert_with(|| {
            self.registry
                .counter(name, &[("to", &to.index().to_string())])
        })
    }

    /// Records one event, evicting (and index-adjusting) the oldest
    /// when the buffer is full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            let evicted = self.events.pop_front().expect("buffer is full");
            self.dropped += 1;
            match evicted {
                TraceEvent::Delivered { from, to, .. } => {
                    let id = self.delivered_id(from, to, true);
                    self.registry.add(id, 1);
                }
                TraceEvent::Lost { to, .. } => {
                    let id = self.loss_id(to, true);
                    self.registry.add(id, 1);
                    let ordinals = self
                        .loss_ordinals
                        .get_mut(&to)
                        .expect("retained loss has an ordinal list");
                    let front = ordinals.pop_front();
                    debug_assert_eq!(front, Some(self.dropped - 1));
                }
                _ => {}
            }
        }
        let ordinal = self.recorded;
        self.recorded += 1;
        match event {
            TraceEvent::Delivered { from, to, .. } => {
                let id = self.delivered_id(from, to, false);
                self.registry.add(id, 1);
            }
            TraceEvent::Lost { to, .. } => {
                let id = self.loss_id(to, false);
                self.registry.add(id, 1);
                self.loss_ordinals.entry(to).or_default().push_back(ordinal);
            }
            _ => {}
        }
        self.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events discarded because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// A snapshot of the index registry (the
    /// `netsim_trace_deliveries[_evicted]_total` and
    /// `netsim_trace_losses[_evicted]_total` counter families).
    #[must_use]
    pub fn index_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Retained losses suffered by `node`, oldest first.
    ///
    /// Compatibility shim over the index: walks only that node's
    /// retained-loss ordinals (O(losses at `node`)) instead of
    /// filtering every retained event.
    pub fn losses_at(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> {
        self.loss_ordinals
            .get(&node)
            .into_iter()
            .flat_map(move |ordinals| {
                ordinals.iter().map(move |ordinal| {
                    let slot = (ordinal - self.dropped) as usize;
                    &self.events[slot]
                })
            })
    }

    /// Retained deliveries from `from` to `to`.
    ///
    /// Compatibility shim over the index: the answer is the recorded
    /// minus the evicted counter for the pair — O(1), no scan.
    #[must_use]
    pub fn deliveries_between(&self, from: NodeId, to: NodeId) -> usize {
        let recorded = self
            .delivered
            .get(&(from, to))
            .map_or(0, |id| self.registry.counter_value(*id));
        let evicted = self
            .delivered_evicted
            .get(&(from, to))
            .map_or(0, |id| self.registry.counter_value(*id));
        (recorded - evicted) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(seq: u64) -> TraceEvent {
        TraceEvent::TxStart {
            at: SimTime::from_micros(seq),
            node: NodeId(0),
            seq,
            bits: 8,
        }
    }

    fn lost(seq: u64, to: NodeId) -> TraceEvent {
        TraceEvent::Lost {
            at: SimTime::from_micros(seq),
            from: NodeId(0),
            to,
            seq,
            reason: LossReason::RfCollision,
        }
    }

    fn delivered(seq: u64, to: NodeId) -> TraceEvent {
        TraceEvent::Delivered {
            at: SimTime::from_micros(seq),
            from: NodeId(0),
            to,
            seq,
        }
    }

    #[test]
    fn ring_buffer_caps_and_counts_drops() {
        let mut tracer = Tracer::new(3);
        for seq in 0..5 {
            tracer.record(tx(seq));
        }
        assert_eq!(tracer.len(), 3);
        assert_eq!(tracer.dropped(), 2);
        let seqs: Vec<u64> = tracer
            .events()
            .map(|e| match e {
                TraceEvent::TxStart { seq, .. } => *seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest must be discarded first");
    }

    #[test]
    fn filters_select_by_node() {
        let mut tracer = Tracer::new(16);
        tracer.record(delivered(1, NodeId(1)));
        tracer.record(lost(1, NodeId(2)));
        assert_eq!(tracer.deliveries_between(NodeId(0), NodeId(1)), 1);
        assert_eq!(tracer.deliveries_between(NodeId(0), NodeId(2)), 0);
        assert_eq!(tracer.losses_at(NodeId(2)).count(), 1);
        assert_eq!(tracer.losses_at(NodeId(1)).count(), 0);
    }

    #[test]
    fn index_tracks_the_retained_window_across_eviction() {
        let mut tracer = Tracer::new(4);
        // Fill: D(1→a) L(→b) D(1→a) L(→b); then two more events evict
        // the first delivery and the first loss.
        tracer.record(delivered(0, NodeId(1)));
        tracer.record(lost(1, NodeId(2)));
        tracer.record(delivered(2, NodeId(1)));
        tracer.record(lost(3, NodeId(2)));
        assert_eq!(tracer.deliveries_between(NodeId(0), NodeId(1)), 2);
        assert_eq!(tracer.losses_at(NodeId(2)).count(), 2);

        tracer.record(tx(4));
        tracer.record(tx(5));
        assert_eq!(tracer.dropped(), 2);
        assert_eq!(tracer.deliveries_between(NodeId(0), NodeId(1)), 1);
        let retained: Vec<u64> = tracer
            .losses_at(NodeId(2))
            .map(|e| match e {
                TraceEvent::Lost { seq, .. } => *seq,
                other => panic!("losses_at returned {other:?}"),
            })
            .collect();
        assert_eq!(retained, vec![3], "only the newer loss is retained");

        let snapshot = tracer.index_snapshot();
        assert_eq!(snapshot.counter("netsim_trace_deliveries_total"), 2);
        assert_eq!(snapshot.counter("netsim_trace_deliveries_evicted_total"), 1);
        assert_eq!(snapshot.counter("netsim_trace_losses_total"), 2);
        assert_eq!(snapshot.counter("netsim_trace_losses_evicted_total"), 1);
    }

    #[test]
    fn index_matches_a_linear_recount_under_heavy_eviction() {
        // Deterministic mixed stream, small capacity: the indexed
        // answers must always equal what the old linear scans computed.
        let mut tracer = Tracer::new(7);
        let mut state = 0x9E3779B97F4A7C15u64;
        for seq in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let to = NodeId((state >> 32) as u32 % 3);
            match state % 3 {
                0 => tracer.record(delivered(seq, to)),
                1 => tracer.record(lost(seq, to)),
                _ => tracer.record(tx(seq)),
            }
            for node in 0..3u32 {
                let node = NodeId(node);
                let scan_deliveries = tracer
                    .events()
                    .filter(|e| {
                        matches!(e, TraceEvent::Delivered { from, to, .. }
                                 if *from == NodeId(0) && *to == node)
                    })
                    .count();
                assert_eq!(tracer.deliveries_between(NodeId(0), node), scan_deliveries);
                let scan_losses: Vec<&TraceEvent> = tracer
                    .events()
                    .filter(|e| matches!(e, TraceEvent::Lost { to, .. } if *to == node))
                    .collect();
                let indexed: Vec<&TraceEvent> = tracer.losses_at(node).collect();
                assert_eq!(indexed, scan_losses);
            }
        }
        assert!(tracer.dropped() > 0, "the test must exercise eviction");
    }

    #[test]
    fn loss_reasons_convert_from_medium_failures() {
        assert_eq!(
            LossReason::from(DeliveryFailure::RfCollision),
            LossReason::RfCollision
        );
        assert_eq!(
            LossReason::from(DeliveryFailure::HalfDuplex),
            LossReason::HalfDuplex
        );
        assert_eq!(
            LossReason::from(DeliveryFailure::RandomLoss),
            LossReason::RandomLoss
        );
    }

    #[test]
    fn loss_reason_labels_are_unique() {
        let mut labels: Vec<&str> = LossReason::ALL.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), LossReason::ALL.len());
        for reason in LossReason::ALL {
            assert_eq!(LossReason::ALL[reason.index()], reason);
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Tracer::new(0);
    }
}
