//! Event tracing for debugging and analysis.
//!
//! A [`Tracer`] is an optional bounded ring buffer of medium-level
//! events — transmissions, per-receiver delivery outcomes, topology
//! changes. Protocol authors use it to answer "what actually happened
//! on the air?" without instrumenting their own code, and tests use it
//! to assert fine-grained causality that the aggregate
//! [`crate::sim::MediumStats`] cannot express.
//!
//! Tracing is off by default (zero cost); enable it with
//! [`crate::sim::Simulator::enable_trace`].

use std::collections::VecDeque;

use crate::medium::DeliveryFailure;
use crate::node::NodeId;
use crate::time::SimTime;
use crate::topology::Position;

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A node began transmitting a frame.
    TxStart {
        /// When.
        at: SimTime,
        /// Transmitting node.
        node: NodeId,
        /// Medium sequence number of the transmission.
        seq: u64,
        /// Bits on the air (payload + preamble).
        bits: u64,
    },
    /// A receiver got the frame.
    Delivered {
        /// When (transmission end).
        at: SimTime,
        /// Transmitting node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Medium sequence number.
        seq: u64,
    },
    /// A receiver got the frame, but the fault channel flipped payload
    /// bits in transit: what arrived is not what was sent. Whether the
    /// corruption is *detected* is up to the protocol's decoder (for
    /// AFF, `wire` parsing and the CRC-16 verdict).
    Corrupted {
        /// When (transmission end).
        at: SimTime,
        /// Transmitting node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Medium sequence number.
        seq: u64,
        /// How many payload bits were flipped.
        flipped_bits: u64,
    },
    /// A receiver in range did not get the frame.
    Lost {
        /// When (transmission end).
        at: SimTime,
        /// Transmitting node.
        from: NodeId,
        /// The receiver that missed it.
        to: NodeId,
        /// Medium sequence number.
        seq: u64,
        /// Why.
        reason: LossReason,
    },
    /// A node's liveness changed.
    Liveness {
        /// When.
        at: SimTime,
        /// The node.
        node: NodeId,
        /// New state.
        alive: bool,
    },
    /// A node moved.
    Moved {
        /// When.
        at: SimTime,
        /// The node.
        node: NodeId,
        /// New position.
        to: Position,
    },
}

/// Why a frame was not delivered to a particular receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossReason {
    /// Overlapping audible transmission.
    RfCollision,
    /// The receiver's own radio was transmitting.
    HalfDuplex,
    /// Independent random frame loss.
    RandomLoss,
    /// The receiver's radio was duty-cycled off.
    Asleep,
    /// The fault channel erased the whole frame.
    FaultErasure,
    /// A fault-model partition window severed the link.
    Partitioned,
}

impl From<DeliveryFailure> for LossReason {
    fn from(failure: DeliveryFailure) -> Self {
        match failure {
            DeliveryFailure::RfCollision => LossReason::RfCollision,
            DeliveryFailure::HalfDuplex => LossReason::HalfDuplex,
            DeliveryFailure::RandomLoss => LossReason::RandomLoss,
        }
    }
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// When full, the oldest events are discarded (and counted), so a
/// long-running simulation cannot exhaust memory through its tracer.
#[derive(Debug)]
pub struct Tracer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Tracer {
    /// Creates a tracer retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be positive");
        Tracer {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Records one event.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events discarded because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained losses suffered by `node`, oldest first.
    pub fn losses_at(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(move |e| matches!(e, TraceEvent::Lost { to, .. } if *to == node))
    }

    /// Retained deliveries from `from` to `to`.
    #[must_use]
    pub fn deliveries_between(&self, from: NodeId, to: NodeId) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(e, TraceEvent::Delivered { from: f, to: t, .. }
                         if *f == from && *t == to)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(seq: u64) -> TraceEvent {
        TraceEvent::TxStart {
            at: SimTime::from_micros(seq),
            node: NodeId(0),
            seq,
            bits: 8,
        }
    }

    #[test]
    fn ring_buffer_caps_and_counts_drops() {
        let mut tracer = Tracer::new(3);
        for seq in 0..5 {
            tracer.record(tx(seq));
        }
        assert_eq!(tracer.len(), 3);
        assert_eq!(tracer.dropped(), 2);
        let seqs: Vec<u64> = tracer
            .events()
            .map(|e| match e {
                TraceEvent::TxStart { seq, .. } => *seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest must be discarded first");
    }

    #[test]
    fn filters_select_by_node() {
        let mut tracer = Tracer::new(16);
        tracer.record(TraceEvent::Delivered {
            at: SimTime::ZERO,
            from: NodeId(0),
            to: NodeId(1),
            seq: 1,
        });
        tracer.record(TraceEvent::Lost {
            at: SimTime::ZERO,
            from: NodeId(0),
            to: NodeId(2),
            seq: 1,
            reason: LossReason::RfCollision,
        });
        assert_eq!(tracer.deliveries_between(NodeId(0), NodeId(1)), 1);
        assert_eq!(tracer.deliveries_between(NodeId(0), NodeId(2)), 0);
        assert_eq!(tracer.losses_at(NodeId(2)).count(), 1);
        assert_eq!(tracer.losses_at(NodeId(1)).count(), 0);
    }

    #[test]
    fn loss_reasons_convert_from_medium_failures() {
        assert_eq!(
            LossReason::from(DeliveryFailure::RfCollision),
            LossReason::RfCollision
        );
        assert_eq!(
            LossReason::from(DeliveryFailure::HalfDuplex),
            LossReason::HalfDuplex
        );
        assert_eq!(
            LossReason::from(DeliveryFailure::RandomLoss),
            LossReason::RandomLoss
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Tracer::new(0);
    }
}
