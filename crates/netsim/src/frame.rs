//! Frames: what the radio actually broadcasts.
//!
//! A [`FramePayload`] is the caller-supplied content, measured in
//! **bits** — the paper's accounting unit. Protocols above (like AFF)
//! bit-pack their headers, so a payload may logically end mid-byte; the
//! payload records the exact bit length and the byte buffer that holds
//! it.

use core::fmt;

use crate::node::NodeId;

/// Error constructing a frame payload.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The payload's declared bit length does not fit its byte buffer
    /// (or the buffer has trailing unused bytes).
    BitLengthMismatch {
        /// Declared logical length in bits.
        bits: u32,
        /// Bytes provided.
        bytes: usize,
    },
    /// The payload is empty.
    Empty,
    /// The payload exceeds the radio's maximum frame size; raised at
    /// send time by the simulator.
    TooLarge {
        /// Bytes in the payload.
        bytes: usize,
        /// The radio's limit.
        max_bytes: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FrameError::BitLengthMismatch { bits, bytes } => {
                write!(f, "bit length {bits} does not fit exactly in {bytes} bytes")
            }
            FrameError::Empty => write!(f, "frame payload must not be empty"),
            FrameError::TooLarge { bytes, max_bytes } => {
                write!(
                    f,
                    "payload of {bytes} bytes exceeds {max_bytes}-byte frames"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// The content of one radio frame: a byte buffer plus its exact logical
/// length in bits.
///
/// # Examples
///
/// ```
/// use retri_netsim::FramePayload;
///
/// // A whole-byte payload.
/// let p = FramePayload::from_bytes(vec![0xAB, 0xCD]).unwrap();
/// assert_eq!(p.bits(), 16);
///
/// // A bit-packed payload: 13 bits occupy two bytes.
/// let p = FramePayload::from_bits(vec![0xFF, 0xF8], 13).unwrap();
/// assert_eq!(p.bits(), 13);
/// assert_eq!(p.bytes().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FramePayload {
    bytes: Vec<u8>,
    bits: u32,
}

impl FramePayload {
    /// Creates a payload of whole bytes.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Empty`] for an empty buffer.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, FrameError> {
        if bytes.is_empty() {
            return Err(FrameError::Empty);
        }
        let bits = (bytes.len() * 8) as u32;
        Ok(FramePayload { bytes, bits })
    }

    /// Creates a bit-packed payload: `bits` logical bits stored in
    /// `bytes` (the final byte may be partially used).
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Empty`] for zero bits and
    /// [`FrameError::BitLengthMismatch`] unless
    /// `bytes.len() == ceil(bits / 8)`.
    pub fn from_bits(bytes: Vec<u8>, bits: u32) -> Result<Self, FrameError> {
        if bits == 0 {
            return Err(FrameError::Empty);
        }
        let expected_bytes = (bits as usize).div_ceil(8);
        if bytes.len() != expected_bytes {
            return Err(FrameError::BitLengthMismatch {
                bits,
                bytes: bytes.len(),
            });
        }
        Ok(FramePayload { bytes, bits })
    }

    /// The byte buffer.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The exact logical length in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The buffer length in bytes (what the frame-size limit applies
    /// to).
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Flips one logical bit in place (MSB-first within each byte).
    ///
    /// Used by the fault channel to model bit corruption: only logical
    /// bits can flip, so padding in a partially-used final byte is
    /// never touched and the payload stays structurally valid.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= self.bits()`.
    pub fn flip_bit(&mut self, bit: u32) {
        assert!(bit < self.bits, "bit {bit} out of range ({})", self.bits);
        self.bytes[bit as usize / 8] ^= 1 << (7 - (bit % 8));
    }
}

/// A frame as received: the payload plus ground-truth metadata.
///
/// `src` is *simulator* metadata — the receiving protocol may use it
/// only for instrumentation (the paper's Section 5.1 methodology), never
/// for protocol decisions in the address-free schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Ground-truth sender (not on the air in address-free protocols).
    pub src: NodeId,
    /// The payload.
    pub payload: FramePayload,
}

impl Frame {
    /// Creates a frame.
    #[must_use]
    pub fn new(src: NodeId, payload: FramePayload) -> Self {
        Frame { src, payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_byte_payload() {
        let p = FramePayload::from_bytes(vec![1, 2, 3]).unwrap();
        assert_eq!(p.bits(), 24);
        assert_eq!(p.byte_len(), 3);
        assert_eq!(p.bytes(), &[1, 2, 3]);
    }

    #[test]
    fn empty_payload_rejected() {
        assert_eq!(FramePayload::from_bytes(vec![]), Err(FrameError::Empty));
        assert_eq!(FramePayload::from_bits(vec![], 0), Err(FrameError::Empty));
    }

    #[test]
    fn bit_packed_payload_validates_length() {
        assert!(FramePayload::from_bits(vec![0xFF], 8).is_ok());
        assert!(FramePayload::from_bits(vec![0xFF], 5).is_ok());
        assert!(FramePayload::from_bits(vec![0xFF, 0x00], 9).is_ok());
        assert_eq!(
            FramePayload::from_bits(vec![0xFF], 9),
            Err(FrameError::BitLengthMismatch { bits: 9, bytes: 1 })
        );
        assert_eq!(
            FramePayload::from_bits(vec![0xFF, 0x00], 8),
            Err(FrameError::BitLengthMismatch { bits: 8, bytes: 2 })
        );
    }

    #[test]
    fn errors_display() {
        for err in [
            FrameError::Empty,
            FrameError::BitLengthMismatch { bits: 9, bytes: 1 },
            FrameError::TooLarge {
                bytes: 30,
                max_bytes: 27,
            },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn flip_bit_targets_logical_bits_msb_first() {
        let mut p = FramePayload::from_bits(vec![0x00, 0x00], 13).unwrap();
        p.flip_bit(0);
        assert_eq!(p.bytes(), &[0x80, 0x00]);
        p.flip_bit(12); // last logical bit: bit 4 of the second byte
        assert_eq!(p.bytes(), &[0x80, 0x08]);
        p.flip_bit(0); // flipping twice restores
        assert_eq!(p.bytes(), &[0x00, 0x08]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_bit_rejects_padding_bits() {
        let mut p = FramePayload::from_bits(vec![0x00, 0x00], 13).unwrap();
        p.flip_bit(13);
    }

    #[test]
    fn frame_carries_ground_truth_source() {
        let payload = FramePayload::from_bytes(vec![7]).unwrap();
        let frame = Frame::new(NodeId(3), payload.clone());
        assert_eq!(frame.src, NodeId(3));
        assert_eq!(frame.payload, payload);
    }
}
