//! Node placement, radio range, and network dynamics.
//!
//! Connectivity uses the classic unit-disk model: two nodes hear each
//! other iff they are within the radio's range. It is deliberately
//! simple — the paper's arguments depend on *limited range* (locality,
//! spatial reuse, hidden terminals), not on fading detail — and it keeps
//! experiments exactly reproducible.
//!
//! # The adjacency cache
//!
//! Connectivity queries are the simulator's innermost loop (carrier
//! sense and collision judgment call [`Topology::in_range`] for every
//! candidate transmission), so the topology maintains a per-node
//! adjacency cache: each site stores its live in-range neighbors as an
//! id-sorted `Vec<NodeId>`. Queries never touch coordinates —
//! [`Topology::in_range`] is a binary search and
//! [`Topology::neighbors`] walks the cached list. Only the *dynamics*
//! pay for geometry, and even they are local: the topology keeps a
//! spatial cell index with pitch equal to the radio range, so any node
//! within range of a position lies in the 3×3 block of cells around
//! it. [`Topology::add`], [`Topology::set_position`], and
//! [`Topology::set_alive`] patch the affected node's links by scanning
//! only that neighborhood — O(occupancy of 9 cells), not O(n) — which
//! is what lets a million-node sparse mesh absorb churn at cost
//! proportional to local density.
//!
//! Distance tests compare squared distances (`d² ≤ range²`), avoiding
//! the square root on the hot path. The boundary case `d == range` is
//! still in range, matching [`Position::distance_to`]` <= range`.

use core::fmt;
use std::collections::HashMap;

use crate::node::NodeId;

/// A spatial cell key: `floor(coordinate / range)` per axis. The pitch
/// equals the radio range, so in-range pairs are never more than one
/// cell apart on either axis. This is the same grid the sharded
/// engine's air index and interest sets use.
pub type Cell = (i64, i64);

/// A node position in meters on a 2-D plane.
///
/// # Examples
///
/// ```
/// use retri_netsim::Position;
///
/// let a = Position::new(0.0, 0.0);
/// let b = Position::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Position {
    /// East-west coordinate, meters.
    pub x: f64,
    /// North-south coordinate, meters.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position, meters.
    #[must_use]
    pub fn distance_to(self, other: Position) -> f64 {
        self.distance_sq_to(other).sqrt()
    }

    /// Squared Euclidean distance, meters² — the radius comparison the
    /// adjacency cache uses, with no square root.
    #[must_use]
    pub fn distance_sq_to(self, other: Position) -> f64 {
        (self.x - other.x).powi(2) + (self.y - other.y).powi(2)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

#[derive(Debug, Clone)]
struct NodeSite {
    position: Position,
    alive: bool,
    /// The cell index key for `position`, cached so a move can drop the
    /// node from its old bucket without recomputing the old cell.
    cell: Cell,
    /// Live in-range neighbors, sorted by id. Empty while the node is
    /// dead. The invariant is symmetric: `b ∈ neighbors(a)` iff
    /// `a ∈ neighbors(b)`.
    neighbors: Vec<NodeId>,
}

/// Positions and liveness of every node, plus the shared radio range.
///
/// The topology is *dynamic*: nodes can move, die, and join — the
/// defining churn of sensor networks (paper Section 1). The simulator
/// applies scheduled dynamics through this type.
///
/// # Examples
///
/// ```
/// use retri_netsim::topology::Topology;
/// use retri_netsim::{NodeId, Position};
///
/// let mut topo = Topology::new(100.0);
/// let a = topo.add(Position::new(0.0, 0.0));
/// let b = topo.add(Position::new(60.0, 0.0));
/// let c = topo.add(Position::new(120.0, 0.0));
///
/// // a-b and b-c hear each other; a-c are hidden terminals.
/// assert!(topo.in_range(a, b));
/// assert!(topo.in_range(b, c));
/// assert!(!topo.in_range(a, c));
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    range: f64,
    range_sq: f64,
    sites: Vec<NodeSite>,
    /// Every node (alive or dead) bucketed by the cell containing its
    /// position. Bucket order is arbitrary — dynamics sort the scanned
    /// candidates before installing them, so query results never depend
    /// on it.
    cells: HashMap<Cell, Vec<NodeId>>,
}

impl Topology {
    /// Creates an empty topology with the given radio range in meters.
    ///
    /// # Panics
    ///
    /// Panics unless `range` is positive and finite.
    #[must_use]
    pub fn new(range: f64) -> Self {
        assert!(
            range.is_finite() && range > 0.0,
            "radio range {range} must be positive"
        );
        Topology {
            range,
            range_sq: range * range,
            sites: Vec::new(),
            cells: HashMap::new(),
        }
    }

    /// The radio range in meters.
    #[must_use]
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Number of nodes ever added (including dead ones).
    #[must_use]
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the topology has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The cell containing `position` on this topology's range-pitched
    /// grid.
    #[must_use]
    pub fn cell_of(&self, position: Position) -> Cell {
        (
            (position.x / self.range).floor() as i64,
            (position.y / self.range).floor() as i64,
        )
    }

    /// The cell currently containing `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    #[must_use]
    pub fn cell(&self, node: NodeId) -> Cell {
        self.site(node).cell
    }

    /// The nodes (alive or dead) currently positioned in `cell`, in
    /// arbitrary bucket order. Callers needing determinism must sort.
    pub fn nodes_in(&self, cell: Cell) -> impl Iterator<Item = NodeId> + '_ {
        self.cells.get(&cell).into_iter().flatten().copied()
    }

    /// Live in-range candidates for `position`, sorted by id, excluding
    /// `skip`. Scans only the 3×3 cell neighborhood of `position`.
    fn scan_neighborhood(
        &self,
        position: Position,
        cell: Cell,
        skip: Option<NodeId>,
    ) -> Vec<NodeId> {
        let mut found = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                let Some(bucket) = self.cells.get(&(cell.0 + dx, cell.1 + dy)) else {
                    continue;
                };
                for &other in bucket {
                    if Some(other) == skip {
                        continue;
                    }
                    let site = &self.sites[other.0 as usize];
                    if site.alive && site.position.distance_sq_to(position) <= self.range_sq {
                        found.push(other);
                    }
                }
            }
        }
        found.sort_unstable();
        found
    }

    /// Adds a node at `position`, returning its id.
    pub fn add(&mut self, position: Position) -> NodeId {
        let id = NodeId(self.sites.len() as u32);
        let cell = self.cell_of(position);
        let neighbors = self.scan_neighborhood(position, cell, None);
        // `id` is larger than every existing id, so pushing keeps each
        // neighbor list sorted.
        for &neighbor in &neighbors {
            self.sites[neighbor.0 as usize].neighbors.push(id);
        }
        self.cells.entry(cell).or_default().push(id);
        self.sites.push(NodeSite {
            position,
            alive: true,
            cell,
            neighbors,
        });
        id
    }

    /// The position of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    #[must_use]
    pub fn position(&self, node: NodeId) -> Position {
        self.site(node).position
    }

    /// Moves a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    pub fn set_position(&mut self, node: NodeId, position: Position) {
        let _ = self.set_position_tracked(node, position);
    }

    /// Moves a node and reports `(old_cell, new_cell)` so callers that
    /// maintain cell-keyed state of their own — the sharded engine's
    /// per-shard interest sets — can patch it with the same delta
    /// instead of rebuilding.
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    pub fn set_position_tracked(&mut self, node: NodeId, position: Position) -> (Cell, Cell) {
        let new_cell = self.cell_of(position);
        let site = self.site_mut(node);
        let old_cell = site.cell;
        site.position = position;
        if new_cell != old_cell {
            site.cell = new_cell;
            let bucket = self
                .cells
                .get_mut(&old_cell)
                .expect("moved node was indexed under its old cell");
            let at = bucket
                .iter()
                .position(|&n| n == node)
                .expect("moved node was present in its old cell bucket");
            bucket.swap_remove(at);
            if bucket.is_empty() {
                self.cells.remove(&old_cell);
            }
            self.cells.entry(new_cell).or_default().push(node);
        }
        self.relink(node);
        (old_cell, new_cell)
    }

    /// Whether a node is alive (participating in the network).
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    #[must_use]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.site(node).alive
    }

    /// Marks a node dead (failure) or alive again (redeployment).
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    pub fn set_alive(&mut self, node: NodeId, alive: bool) {
        if self.site(node).alive == alive {
            return;
        }
        self.site_mut(node).alive = alive;
        self.relink(node);
    }

    /// Whether `a` and `b` are distinct, both alive, and within range of
    /// each other.
    ///
    /// O(log degree): a binary search in `a`'s cached neighbor list.
    ///
    /// # Panics
    ///
    /// Panics if either node was never added.
    #[must_use]
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        let sa = self.site(a);
        let _ = self.site(b);
        sa.neighbors.binary_search(&b).is_ok()
    }

    /// The live neighbors of `node`, in ascending id order.
    ///
    /// O(degree): walks the cached list; no geometry.
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.site(node).neighbors.iter().copied()
    }

    /// The number of live neighbors of `node`, in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `node` was never added.
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        self.site(node).neighbors.len()
    }

    /// All node ids, alive or dead.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.sites.len() as u32).map(NodeId)
    }

    fn site(&self, node: NodeId) -> &NodeSite {
        self.sites
            .get(node.0 as usize)
            .unwrap_or_else(|| panic!("unknown node {node}"))
    }

    fn site_mut(&mut self, node: NodeId) -> &mut NodeSite {
        self.sites
            .get_mut(node.0 as usize)
            .unwrap_or_else(|| panic!("unknown node {node}"))
    }

    /// Repairs `node`'s adjacency after a move or liveness change:
    /// detaches it from every current neighbor, then (if alive)
    /// recomputes its neighbor set from the 3×3 cell neighborhood and
    /// reattaches symmetrically. O(old degree + 9-cell occupancy).
    fn relink(&mut self, node: NodeId) {
        let index = node.0 as usize;
        let old = std::mem::take(&mut self.sites[index].neighbors);
        for neighbor in &old {
            let list = &mut self.sites[neighbor.0 as usize].neighbors;
            if let Ok(at) = list.binary_search(&node) {
                list.remove(at);
            }
        }
        drop(old);
        let mut fresh = Vec::new();
        if self.sites[index].alive {
            let position = self.sites[index].position;
            let cell = self.sites[index].cell;
            fresh = self.scan_neighborhood(position, cell, Some(node));
            for neighbor in &fresh {
                let list = &mut self.sites[neighbor.0 as usize].neighbors;
                let at = list
                    .binary_search(&node)
                    .expect_err("node was detached from every list above");
                list.insert(at, node);
            }
        }
        self.sites[index].neighbors = fresh;
    }
}

/// Convenience layouts used by the experiments.
impl Topology {
    /// A fully connected cluster: `n` nodes evenly spaced on a circle
    /// whose diameter is well inside the radio range.
    ///
    /// This is the paper's testbed geometry ("all of the transmitters
    /// and receivers were arranged so that they were fully connected",
    /// Section 5.1).
    #[must_use]
    pub fn full_mesh(n: usize, range: f64) -> Self {
        let mut topo = Topology::new(range);
        let radius = range / 4.0;
        for i in 0..n {
            let angle = 2.0 * std::f64::consts::PI * i as f64 / n.max(1) as f64;
            topo.add(Position::new(radius * angle.cos(), radius * angle.sin()));
        }
        topo
    }

    /// A regular `cols × rows` grid with the given spacing in meters.
    #[must_use]
    pub fn grid(cols: usize, rows: usize, spacing: f64, range: f64) -> Self {
        let mut topo = Topology::new(range);
        for row in 0..rows {
            for col in 0..cols {
                topo.add(Position::new(col as f64 * spacing, row as f64 * spacing));
            }
        }
        topo
    }

    /// The canonical hidden-terminal triple: two senders at `±range`
    /// from a receiver in the middle, mutually out of range.
    ///
    /// Returns the topology and `(sender_a, receiver, sender_b)`.
    #[must_use]
    pub fn hidden_terminal(range: f64) -> (Self, (NodeId, NodeId, NodeId)) {
        let mut topo = Topology::new(range);
        let a = topo.add(Position::new(-range * 0.9, 0.0));
        let r = topo.add(Position::new(0.0, 0.0));
        let b = topo.add(Position::new(range * 0.9, 0.0));
        (topo, (a, r, b))
    }

    /// An air-drop deployment: `n` nodes uniformly distributed over a
    /// disc of the given radius centered on the origin — the "dropped
    /// into inhospitable terrain" scenario of the paper's introduction.
    ///
    /// Sampling is area-uniform (radius drawn as `R·sqrt(u)`).
    #[must_use]
    pub fn random_disc<R: rand::RngCore>(
        n: usize,
        disc_radius: f64,
        range: f64,
        rng: &mut R,
    ) -> Self {
        use rand::Rng as _;
        let mut topo = Topology::new(range);
        for _ in 0..n {
            let r = disc_radius * rng.gen::<f64>().sqrt();
            let theta = rng.gen::<f64>() * std::f64::consts::TAU;
            topo.add(Position::new(r * theta.cos(), r * theta.sin()));
        }
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        assert_eq!(
            Position::new(0.0, 0.0).distance_to(Position::new(3.0, 4.0)),
            5.0
        );
        assert_eq!(
            Position::new(1.0, 1.0).distance_to(Position::new(1.0, 1.0)),
            0.0
        );
    }

    #[test]
    fn in_range_is_symmetric_and_irreflexive() {
        let mut topo = Topology::new(50.0);
        let a = topo.add(Position::new(0.0, 0.0));
        let b = topo.add(Position::new(30.0, 0.0));
        assert!(topo.in_range(a, b));
        assert!(topo.in_range(b, a));
        assert!(!topo.in_range(a, a));
    }

    #[test]
    fn boundary_distance_counts_as_in_range() {
        let mut topo = Topology::new(50.0);
        let a = topo.add(Position::new(0.0, 0.0));
        let b = topo.add(Position::new(50.0, 0.0));
        assert!(topo.in_range(a, b));
    }

    #[test]
    fn dead_nodes_hear_nothing() {
        let mut topo = Topology::new(50.0);
        let a = topo.add(Position::new(0.0, 0.0));
        let b = topo.add(Position::new(10.0, 0.0));
        topo.set_alive(b, false);
        assert!(!topo.in_range(a, b));
        topo.set_alive(b, true);
        assert!(topo.in_range(a, b));
    }

    #[test]
    fn movement_changes_connectivity() {
        let mut topo = Topology::new(50.0);
        let a = topo.add(Position::new(0.0, 0.0));
        let b = topo.add(Position::new(10.0, 0.0));
        assert!(topo.in_range(a, b));
        topo.set_position(b, Position::new(100.0, 0.0));
        assert!(!topo.in_range(a, b));
        assert_eq!(topo.position(b), Position::new(100.0, 0.0));
    }

    #[test]
    fn neighbors_lists_live_in_range_nodes() {
        let mut topo = Topology::new(50.0);
        let a = topo.add(Position::new(0.0, 0.0));
        let b = topo.add(Position::new(10.0, 0.0));
        let c = topo.add(Position::new(200.0, 0.0));
        let d = topo.add(Position::new(20.0, 0.0));
        topo.set_alive(d, false);
        let neighbors: Vec<NodeId> = topo.neighbors(a).collect();
        assert_eq!(neighbors, vec![b]);
        assert_eq!(topo.degree(a), 1);
        let _ = c;
    }

    /// Brute-force connectivity with the same squared-distance predicate
    /// the cache uses — the ground truth the cache must match.
    fn brute_in_range(topo: &Topology, a: NodeId, b: NodeId) -> bool {
        a != b
            && topo.is_alive(a)
            && topo.is_alive(b)
            && topo.position(a).distance_sq_to(topo.position(b)) <= topo.range() * topo.range()
    }

    fn assert_cache_matches_brute_force(topo: &Topology) {
        for a in topo.node_ids() {
            let cached: Vec<NodeId> = topo.neighbors(a).collect();
            let brute: Vec<NodeId> = topo
                .node_ids()
                .filter(|&b| brute_in_range(topo, a, b))
                .collect();
            assert_eq!(cached, brute, "neighbor cache diverged for {a}");
            assert!(cached.windows(2).all(|w| w[0] < w[1]), "unsorted for {a}");
            for b in topo.node_ids() {
                assert_eq!(topo.in_range(a, b), brute_in_range(topo, a, b));
            }
        }
        assert_cell_index_consistent(topo);
    }

    /// The spatial index must hold every node exactly once, in the
    /// bucket matching its current position.
    fn assert_cell_index_consistent(topo: &Topology) {
        let indexed: usize = topo.cells.values().map(Vec::len).sum();
        assert_eq!(indexed, topo.len(), "cell index count drifted");
        for node in topo.node_ids() {
            let cell = topo.cell_of(topo.position(node));
            assert_eq!(topo.cell(node), cell, "stale cached cell for {node}");
            let bucket = topo
                .cells
                .get(&cell)
                .unwrap_or_else(|| panic!("no bucket for {node}'s cell"));
            assert_eq!(
                bucket.iter().filter(|&&n| n == node).count(),
                1,
                "{node} not indexed exactly once"
            );
        }
    }

    #[test]
    fn adjacency_cache_survives_dynamics() {
        let mut topo = Topology::new(50.0);
        let a = topo.add(Position::new(0.0, 0.0));
        let b = topo.add(Position::new(30.0, 0.0));
        let c = topo.add(Position::new(60.0, 0.0));
        assert_cache_matches_brute_force(&topo);
        topo.set_position(c, Position::new(20.0, 0.0));
        assert_cache_matches_brute_force(&topo);
        topo.set_alive(b, false);
        assert_cache_matches_brute_force(&topo);
        topo.set_alive(b, false); // idempotent kill
        assert_cache_matches_brute_force(&topo);
        topo.set_position(b, Position::new(100.0, 0.0)); // move while dead
        assert_cache_matches_brute_force(&topo);
        topo.set_alive(b, true); // revive at the new position
        assert_cache_matches_brute_force(&topo);
        let d = topo.add(Position::new(10.0, 10.0)); // join late
        assert_cache_matches_brute_force(&topo);
        let _ = (a, d);
    }

    /// Randomized move/churn/add sequences (ISSUE 7): the incremental
    /// cell-indexed adjacency must match a brute-force rebuild after
    /// every single mutation, including exact-boundary distances
    /// (3-4-5 triangles scaled to d == range) and cross-cell moves.
    mod incremental_vs_brute_force {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn randomized_dynamics_never_desync_the_cache(
                ops in proptest::collection::vec(
                    (0u8..4, any::<u16>(), 0u64..32, 0u64..32),
                    1..40,
                ),
            ) {
                let mut topo = Topology::new(50.0);
                // Seed row crossing several 50 m cells.
                for i in 0..6 {
                    topo.add(Position::new(i as f64 * 30.0, 0.0));
                }
                for (op, pick, gx, gy) in ops {
                    // 10 m lattice under a 50 m range: boundary-exact
                    // pairs (30-40-50 triangles) arise naturally.
                    let pos = Position::new(gx as f64 * 10.0, gy as f64 * 10.0);
                    let node = NodeId(u32::from(pick) % topo.len() as u32);
                    match op {
                        0 => topo.set_position(node, pos),
                        1 => topo.set_alive(node, false),
                        2 => topo.set_alive(node, true),
                        _ => {
                            topo.add(pos);
                        }
                    }
                    assert_cache_matches_brute_force(&topo);
                }
            }
        }
    }

    #[test]
    fn set_position_tracked_reports_the_cell_delta() {
        let mut topo = Topology::new(50.0);
        let a = topo.add(Position::new(10.0, 10.0));
        assert_eq!(topo.cell(a), (0, 0));
        let (from, to) = topo.set_position_tracked(a, Position::new(120.0, -10.0));
        assert_eq!(from, (0, 0));
        assert_eq!(to, (2, -1));
        assert_eq!(topo.cell(a), (2, -1));
        // A move inside one cell reports an empty delta.
        let (from, to) = topo.set_position_tracked(a, Position::new(130.0, -20.0));
        assert_eq!(from, to);
        assert_cache_matches_brute_force(&topo);
    }

    #[test]
    fn full_mesh_is_fully_connected() {
        let topo = Topology::full_mesh(6, 100.0);
        for a in topo.node_ids() {
            for b in topo.node_ids() {
                if a != b {
                    assert!(topo.in_range(a, b), "{a} cannot hear {b}");
                }
            }
        }
    }

    #[test]
    fn grid_has_expected_size_and_spacing() {
        let topo = Topology::grid(3, 2, 10.0, 15.0);
        assert_eq!(topo.len(), 6);
        // Orthogonal neighbors in range, diagonal (14.1m) also in range,
        // two-step (20m) not.
        assert!(topo.in_range(NodeId(0), NodeId(1)));
        assert!(topo.in_range(NodeId(0), NodeId(4)));
        assert!(!topo.in_range(NodeId(0), NodeId(2)));
    }

    #[test]
    fn hidden_terminal_geometry() {
        let (topo, (a, r, b)) = Topology::hidden_terminal(100.0);
        assert!(topo.in_range(a, r));
        assert!(topo.in_range(b, r));
        assert!(!topo.in_range(a, b), "senders must not hear each other");
    }

    #[test]
    fn random_disc_stays_inside_the_disc() {
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let topo = Topology::random_disc(200, 80.0, 30.0, &mut rng);
        assert_eq!(topo.len(), 200);
        let origin = Position::new(0.0, 0.0);
        for id in topo.node_ids() {
            assert!(topo.position(id).distance_to(origin) <= 80.0 + 1e-9);
        }
        // Area-uniform: roughly a quarter of nodes within half radius.
        let inner = topo
            .node_ids()
            .filter(|&id| topo.position(id).distance_to(origin) <= 40.0)
            .count();
        assert!((30..=70).contains(&inner), "inner count {inner}");
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn unknown_node_panics() {
        let topo = Topology::new(10.0);
        let _ = topo.position(NodeId(3));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_range_rejected() {
        let _ = Topology::new(0.0);
    }

    #[test]
    fn empty_and_len() {
        let mut topo = Topology::new(10.0);
        assert!(topo.is_empty());
        topo.add(Position::default());
        assert!(!topo.is_empty());
        assert_eq!(topo.len(), 1);
    }
}
