//! Fault injection: bit errors, bursts, erasures, churn, partitions.
//!
//! The paper validates AFF on a real, noisy Radiometrix RPC channel;
//! [`crate::radio::RadioConfig::frame_loss`] only models *independent
//! whole-frame* loss, which never exercises the CRC-16 path with
//! corrupted bytes and never creates the bursty regimes a deployed
//! sensor network lives in. A [`FaultModel`] composes with the radio
//! model to add:
//!
//! - **per-bit corruption** and **whole-frame erasure** governed by a
//!   [`GilbertElliott`] good/bad two-state burst process (i.i.d. BER is
//!   the degenerate case where both states coincide),
//! - **scheduled churn**: node deaths and revivals applied through the
//!   simulator's existing `set_alive` machinery, and
//! - **partition windows**: time intervals during which frames crossing
//!   a node-group boundary are severed deterministically.
//!
//! All random fault decisions are drawn from a *dedicated* RNG stream
//! seeded with [`fault_stream_seed`] — a SplitMix64 absorption of the
//! label [`FAULT_STREAM_LABEL`] into the simulation seed — so enabling
//! faults never moves a draw of the simulator's main RNG, and a run
//! with [`FaultModel::none`] stays byte-identical to one with no fault
//! model at all.

use rand::rngs::StdRng;
use rand::Rng;

use crate::node::NodeId;
use crate::time::SimTime;

/// Label absorbed into the simulation seed to derive the fault RNG
/// stream (see [`fault_stream_seed`]).
pub const FAULT_STREAM_LABEL: &str = "netsim.fault";

/// Derives the seed of the dedicated fault RNG stream from the
/// simulation seed.
///
/// The derivation mirrors the benchmark harness's `trial_seed`: start
/// from the root seed and absorb each byte of [`FAULT_STREAM_LABEL`]
/// through SplitMix64. Crates that depend on `retri` can compute the
/// same value as `retri::seed::stream_seed(seed, "netsim.fault")`;
/// `netsim` re-derives it locally to keep its dependency surface at
/// `rand` alone.
#[must_use]
pub fn fault_stream_seed(seed: u64) -> u64 {
    let mut state = seed;
    for &byte in FAULT_STREAM_LABEL.as_bytes() {
        state ^= u64::from(byte);
        state = rand::splitmix64(&mut state);
    }
    state
}

/// Channel quality while the Gilbert–Elliott process sits in one state.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChannelState {
    /// Probability that any single payload bit is flipped.
    pub bit_error_rate: f64,
    /// Probability that the whole frame is erased (lost before decode).
    pub frame_erasure: f64,
}

impl ChannelState {
    /// A state that corrupts and erases nothing.
    #[must_use]
    pub fn clean() -> Self {
        ChannelState {
            bit_error_rate: 0.0,
            frame_erasure: 0.0,
        }
    }

    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.bit_error_rate),
            "bit_error_rate must be a probability, got {}",
            self.bit_error_rate
        );
        assert!(
            (0.0..=1.0).contains(&self.frame_erasure),
            "frame_erasure must be a probability, got {}",
            self.frame_erasure
        );
    }
}

/// What the channel did to one delivered frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameFault {
    /// The frame was erased outright.
    pub erased: bool,
    /// Per-bit flip probability to apply if not erased.
    pub bit_error_rate: f64,
}

/// A Gilbert–Elliott two-state burst channel.
///
/// The process holds a good/bad state per receiver and steps once per
/// frame: from good it moves to bad with probability `to_bad`, from bad
/// back to good with probability `to_good`. The stationary probability
/// of the bad state is `to_bad / (to_bad + to_good)`.
///
/// When the two states coincide ([`GilbertElliott::iid`]) the process
/// degenerates *exactly* to an i.i.d. channel: the transition draw is
/// skipped entirely, so the decision stream equals a plain Bernoulli
/// sequence over the same RNG — bit-for-bit, not just in distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GilbertElliott {
    /// Channel quality in the good state.
    pub good: ChannelState,
    /// Channel quality in the bad state.
    pub bad: ChannelState,
    /// Per-frame transition probability good → bad.
    pub to_bad: f64,
    /// Per-frame transition probability bad → good.
    pub to_good: f64,
}

impl GilbertElliott {
    /// An i.i.d. channel: both states share `state`, so no burst
    /// structure exists and no transition draws are consumed.
    #[must_use]
    pub fn iid(state: ChannelState) -> Self {
        state.validate();
        GilbertElliott {
            good: state,
            bad: state,
            to_bad: 0.0,
            to_good: 0.0,
        }
    }

    /// A bursty channel with distinct good/bad states.
    ///
    /// # Panics
    ///
    /// Panics if any probability lies outside `[0, 1]`.
    #[must_use]
    pub fn bursty(good: ChannelState, bad: ChannelState, to_bad: f64, to_good: f64) -> Self {
        good.validate();
        bad.validate();
        assert!(
            (0.0..=1.0).contains(&to_bad) && (0.0..=1.0).contains(&to_good),
            "transition probabilities must lie in [0, 1], got {to_bad} / {to_good}"
        );
        GilbertElliott {
            good,
            bad,
            to_bad,
            to_good,
        }
    }

    /// Whether the process is the degenerate i.i.d. case (both states
    /// coincide, so transitions are unobservable).
    #[must_use]
    pub fn is_degenerate(&self) -> bool {
        self.good == self.bad
    }

    /// Stationary probability of the bad state:
    /// `to_bad / (to_bad + to_good)`, or `0` when both transition
    /// probabilities are zero.
    #[must_use]
    pub fn stationary_bad(&self) -> f64 {
        let total = self.to_bad + self.to_good;
        if total == 0.0 {
            0.0
        } else {
            self.to_bad / total
        }
    }

    /// Steps the per-receiver state one frame and returns the governing
    /// channel quality. Degenerate (i.i.d.) channels consume no draw.
    pub fn step(&self, in_bad: &mut bool, rng: &mut StdRng) -> ChannelState {
        if !self.is_degenerate() {
            let p = if *in_bad { self.to_good } else { self.to_bad };
            if rng.gen_range(0.0..1.0) < p {
                *in_bad = !*in_bad;
            }
        }
        if *in_bad {
            self.bad
        } else {
            self.good
        }
    }

    /// Judges one frame: steps the state, then draws the erasure
    /// decision (one draw, skipped when the governing state cannot
    /// erase). The returned [`FrameFault`] carries the bit-error rate
    /// for the caller to apply per payload bit.
    pub fn judge_frame(&self, in_bad: &mut bool, rng: &mut StdRng) -> FrameFault {
        let state = self.step(in_bad, rng);
        let erased = state.frame_erasure > 0.0 && rng.gen_range(0.0..1.0) < state.frame_erasure;
        FrameFault {
            erased,
            bit_error_rate: state.bit_error_rate,
        }
    }
}

/// A scheduled liveness change applied at simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChurnEvent {
    /// When the change applies.
    pub at: SimTime,
    /// The node whose liveness changes. The node must have been added
    /// to the simulator before this time is reached.
    pub node: NodeId,
    /// `false` kills the node, `true` revives it.
    pub alive: bool,
}

/// A time window during which one node group is cut off from the rest.
///
/// While `start <= now < end`, any frame whose sender and receiver sit
/// on opposite sides of the group boundary is severed deterministically
/// (no RNG draw), counted as a partition loss.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PartitionWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// The isolated group; membership is tested by linear scan, so keep
    /// groups small (they describe a cut, not a census).
    pub group: Vec<NodeId>,
}

impl PartitionWindow {
    /// Creates a window isolating `group` during `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics unless `start < end`.
    #[must_use]
    pub fn new(start: SimTime, end: SimTime, group: Vec<NodeId>) -> Self {
        assert!(start < end, "partition window must have positive length");
        PartitionWindow { start, end, group }
    }

    fn contains(&self, node: NodeId) -> bool {
        self.group.contains(&node)
    }

    /// Whether this window severs a frame from `from` to `to` at `at`.
    #[must_use]
    pub fn severs(&self, from: NodeId, to: NodeId, at: SimTime) -> bool {
        self.start <= at && at < self.end && (self.contains(from) != self.contains(to))
    }
}

/// The complete fault configuration of a simulation run.
///
/// The default ([`FaultModel::none`]) injects nothing and adds zero
/// cost and zero RNG draws to the hot path.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultModel {
    channel: Option<GilbertElliott>,
    churn: Vec<ChurnEvent>,
    partitions: Vec<PartitionWindow>,
}

impl FaultModel {
    /// No faults: the identity model.
    #[must_use]
    pub fn none() -> Self {
        FaultModel::default()
    }

    /// Whether this model injects nothing at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.channel.is_none() && self.churn.is_empty() && self.partitions.is_empty()
    }

    /// Sets the Gilbert–Elliott corruption/erasure channel.
    #[must_use]
    pub fn with_channel(mut self, channel: GilbertElliott) -> Self {
        self.channel = Some(channel);
        self
    }

    /// Adds one scheduled death/revival.
    #[must_use]
    pub fn with_churn_event(mut self, at: SimTime, node: NodeId, alive: bool) -> Self {
        self.churn.push(ChurnEvent { at, node, alive });
        self
    }

    /// Adds a partition window.
    #[must_use]
    pub fn with_partition(mut self, window: PartitionWindow) -> Self {
        self.partitions.push(window);
        self
    }

    /// The corruption/erasure channel, if any.
    #[must_use]
    pub fn channel(&self) -> Option<GilbertElliott> {
        self.channel
    }

    /// The scheduled churn events.
    #[must_use]
    pub fn churn(&self) -> &[ChurnEvent] {
        &self.churn
    }

    /// The partition windows.
    #[must_use]
    pub fn partitions(&self) -> &[PartitionWindow] {
        &self.partitions
    }

    /// Whether any partition window severs `from → to` at `at`.
    #[must_use]
    pub fn severs(&self, from: NodeId, to: NodeId, at: SimTime) -> bool {
        !self.partitions.is_empty() && self.partitions.iter().any(|w| w.severs(from, to, at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fault_stream_differs_from_root_seed() {
        // The derived stream must not collide with the main RNG's seed,
        // and must be a pure function of the root seed.
        assert_ne!(fault_stream_seed(0), 0);
        assert_ne!(fault_stream_seed(42), 42);
        assert_eq!(fault_stream_seed(42), fault_stream_seed(42));
        assert_ne!(fault_stream_seed(42), fault_stream_seed(43));
    }

    #[test]
    fn none_model_is_inert() {
        let model = FaultModel::none();
        assert!(model.is_none());
        assert!(model.channel().is_none());
        assert!(!model.severs(NodeId(0), NodeId(1), SimTime::ZERO));
    }

    #[test]
    fn partition_severs_only_across_the_cut_during_the_window() {
        let window = PartitionWindow::new(
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            vec![NodeId(0), NodeId(1)],
        );
        let model = FaultModel::none().with_partition(window);
        let inside = SimTime::from_millis(1500);
        // Across the cut, inside the window: severed.
        assert!(model.severs(NodeId(0), NodeId(2), inside));
        assert!(model.severs(NodeId(2), NodeId(1), inside));
        // Same side (either side): not severed.
        assert!(!model.severs(NodeId(0), NodeId(1), inside));
        assert!(!model.severs(NodeId(2), NodeId(3), inside));
        // Outside the window: not severed.
        assert!(!model.severs(NodeId(0), NodeId(2), SimTime::from_millis(999)));
        assert!(!model.severs(NodeId(0), NodeId(2), SimTime::from_secs(2)));
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn empty_partition_window_rejected() {
        let _ = PartitionWindow::new(SimTime::from_secs(1), SimTime::from_secs(1), vec![]);
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn invalid_bit_error_rate_rejected() {
        let _ = GilbertElliott::iid(ChannelState {
            bit_error_rate: 1.5,
            frame_erasure: 0.0,
        });
    }

    #[test]
    fn stationary_bad_matches_transition_ratio() {
        let ge = GilbertElliott::bursty(
            ChannelState::clean(),
            ChannelState {
                bit_error_rate: 0.01,
                frame_erasure: 0.2,
            },
            0.1,
            0.3,
        );
        assert!((ge.stationary_bad() - 0.25).abs() < 1e-12);
        assert_eq!(
            GilbertElliott::iid(ChannelState::clean()).stationary_bad(),
            0.0
        );
    }

    #[test]
    fn degenerate_channel_consumes_no_transition_draws() {
        // A degenerate channel's erasure decisions must be bit-for-bit
        // identical to a plain Bernoulli sequence over the same RNG.
        let p = 0.3;
        let ge = GilbertElliott::iid(ChannelState {
            bit_error_rate: 0.0,
            frame_erasure: p,
        });
        let mut channel_rng = StdRng::seed_from_u64(99);
        let mut plain_rng = StdRng::seed_from_u64(99);
        let mut in_bad = false;
        for _ in 0..10_000 {
            let fault = ge.judge_frame(&mut in_bad, &mut channel_rng);
            let plain = plain_rng.gen_range(0.0..1.0) < p;
            assert_eq!(fault.erased, plain);
            assert!(!in_bad, "degenerate channel never enters the bad state");
        }
    }
}
