//! The shared broadcast medium.
//!
//! The medium tracks every transmission as a time interval. At the end
//! of a transmission, delivery is decided independently per receiver:
//!
//! 1. the receiver must be alive, distinct from the sender, and in
//!    range;
//! 2. a **half-duplex** radio that was itself transmitting during any
//!    part of the interval hears nothing;
//! 3. any *other* transmission audible at the receiver that overlaps the
//!    interval corrupts the frame (an **RF collision** — no capture
//!    effect); hidden terminals produce exactly this case;
//! 4. otherwise the frame survives an independent random-loss draw.
//!
//! Evaluating at transmission end is sound because any overlapping
//! transmission has, by definition, already *started* by then, so the
//! medium has its record.

use crate::frame::Frame;
use crate::node::NodeId;
use crate::time::SimTime;
use crate::topology::Topology;

/// One transmission on the air (or recently completed).
#[derive(Debug, Clone)]
pub(crate) struct TxRecord {
    /// Unique, monotonically increasing transmission number.
    pub seq: u64,
    /// The transmitting node.
    pub sender: NodeId,
    /// First instant of the transmission.
    pub start: SimTime,
    /// One past the last instant of the transmission.
    pub end: SimTime,
    /// What is being transmitted.
    pub frame: Frame,
    /// Bits on the air (payload + preamble), for receiver energy
    /// accounting.
    pub bits_on_air: u64,
}

impl TxRecord {
    fn overlaps(&self, start: SimTime, end: SimTime) -> bool {
        self.start < end && self.end > start
    }
}

/// Why a receiver did not get a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryFailure {
    /// The receiver's own radio was transmitting (half-duplex).
    HalfDuplex,
    /// Another audible transmission overlapped (RF collision).
    RfCollision,
    /// Independent random frame loss.
    RandomLoss,
}

/// Per-receiver delivery verdict for one transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    Delivered,
    Failed(DeliveryFailure),
}

#[derive(Debug, Default)]
pub(crate) struct Medium {
    records: Vec<TxRecord>,
    next_seq: u64,
}

impl Medium {
    pub fn new() -> Self {
        Medium::default()
    }

    /// Registers a transmission starting now; returns its sequence
    /// number.
    pub fn begin_tx(
        &mut self,
        sender: NodeId,
        start: SimTime,
        end: SimTime,
        frame: Frame,
        bits_on_air: u64,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.records.push(TxRecord {
            seq,
            sender,
            start,
            end,
            frame,
            bits_on_air,
        });
        seq
    }

    /// Whether `listener` hears any ongoing foreign transmission at
    /// `now` (CSMA carrier sense).
    pub fn busy_for(&self, listener: NodeId, now: SimTime, topology: &Topology) -> bool {
        self.records.iter().any(|record| {
            record.sender != listener
                && record.start <= now
                && record.end > now
                && topology.in_range(record.sender, listener)
        })
    }

    /// Whether `node`'s own radio is transmitting during `[start, end)`.
    fn transmitting_during(
        &self,
        node: NodeId,
        start: SimTime,
        end: SimTime,
        exclude_seq: u64,
    ) -> bool {
        self.records.iter().any(|record| {
            record.seq != exclude_seq && record.sender == node && record.overlaps(start, end)
        })
    }

    /// Whether any foreign transmission audible at `receiver` overlaps
    /// `[start, end)` other than `exclude_seq`.
    fn interference_at(
        &self,
        receiver: NodeId,
        start: SimTime,
        end: SimTime,
        exclude_seq: u64,
        topology: &Topology,
    ) -> bool {
        self.records.iter().any(|record| {
            record.seq != exclude_seq
                && record.sender != receiver
                && record.overlaps(start, end)
                && topology.in_range(record.sender, receiver)
        })
    }

    /// Looks up a record by sequence number.
    pub fn record(&self, seq: u64) -> Option<&TxRecord> {
        self.records.iter().find(|r| r.seq == seq)
    }

    /// Decides delivery of transmission `seq` to `receiver`.
    ///
    /// `loss_draw` is a pre-drawn uniform `[0,1)` variate (drawn by the
    /// engine so the medium itself stays deterministic and borrow-free).
    pub fn judge(
        &self,
        seq: u64,
        receiver: NodeId,
        loss_draw: f64,
        frame_loss: f64,
        topology: &Topology,
    ) -> Verdict {
        let record = self.record(seq).expect("judging unknown transmission");
        debug_assert!(topology.in_range(record.sender, receiver));
        if self.transmitting_during(receiver, record.start, record.end, seq) {
            Verdict::Failed(DeliveryFailure::HalfDuplex)
        } else if self.interference_at(receiver, record.start, record.end, seq, topology) {
            Verdict::Failed(DeliveryFailure::RfCollision)
        } else if loss_draw < frame_loss {
            Verdict::Failed(DeliveryFailure::RandomLoss)
        } else {
            Verdict::Delivered
        }
    }

    /// Drops records that can no longer overlap any future judgment: a
    /// judgment at time `now` only looks back one frame airtime, so
    /// anything ended before `horizon` is garbage.
    pub fn prune(&mut self, horizon: SimTime) {
        self.records.retain(|record| record.end >= horizon);
    }

    /// Number of retained records (for tests and diagnostics).
    #[cfg(test)]
    pub fn record_count(&self) -> usize {
        self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FramePayload;
    use crate::topology::Position;

    fn frame(src: u32) -> Frame {
        Frame::new(
            NodeId(src),
            FramePayload::from_bytes(vec![src as u8]).unwrap(),
        )
    }

    fn t(micros: u64) -> SimTime {
        SimTime::from_micros(micros)
    }

    /// a --- r --- b with a and b mutually hidden.
    fn hidden_topology() -> (Topology, NodeId, NodeId, NodeId) {
        let (topo, (a, r, b)) = Topology::hidden_terminal(100.0);
        (topo, a, r, b)
    }

    #[test]
    fn clean_delivery() {
        let (topo, a, r, _) = hidden_topology();
        let mut medium = Medium::new();
        let seq = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        assert_eq!(medium.judge(seq, r, 0.9, 0.0, &topo), Verdict::Delivered);
    }

    #[test]
    fn random_loss_applies_after_collision_checks() {
        let (topo, a, r, _) = hidden_topology();
        let mut medium = Medium::new();
        let seq = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        assert_eq!(
            medium.judge(seq, r, 0.05, 0.1, &topo),
            Verdict::Failed(DeliveryFailure::RandomLoss)
        );
        assert_eq!(medium.judge(seq, r, 0.5, 0.1, &topo), Verdict::Delivered);
    }

    #[test]
    fn hidden_terminals_collide_at_receiver() {
        let (topo, a, r, b) = hidden_topology();
        let mut medium = Medium::new();
        let sa = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        let sb = medium.begin_tx(b, t(50), t(150), frame(2), 8);
        // Both frames are corrupted at r.
        assert_eq!(
            medium.judge(sa, r, 0.9, 0.0, &topo),
            Verdict::Failed(DeliveryFailure::RfCollision)
        );
        assert_eq!(
            medium.judge(sb, r, 0.9, 0.0, &topo),
            Verdict::Failed(DeliveryFailure::RfCollision)
        );
    }

    #[test]
    fn non_overlapping_transmissions_do_not_collide() {
        let (topo, a, r, b) = hidden_topology();
        let mut medium = Medium::new();
        let sa = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        let sb = medium.begin_tx(b, t(100), t(200), frame(2), 8);
        assert_eq!(medium.judge(sa, r, 0.9, 0.0, &topo), Verdict::Delivered);
        assert_eq!(medium.judge(sb, r, 0.9, 0.0, &topo), Verdict::Delivered);
    }

    #[test]
    fn out_of_range_interferer_is_harmless() {
        // a transmits to r; b's simultaneous transmission is audible at r?
        // Move b out of r's range entirely: no interference.
        let mut topo = Topology::new(50.0);
        let a = topo.add(Position::new(0.0, 0.0));
        let r = topo.add(Position::new(40.0, 0.0));
        let b = topo.add(Position::new(500.0, 0.0));
        let mut medium = Medium::new();
        let sa = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        let _sb = medium.begin_tx(b, t(0), t(100), frame(2), 8);
        assert_eq!(medium.judge(sa, r, 0.9, 0.0, &topo), Verdict::Delivered);
    }

    #[test]
    fn half_duplex_receiver_misses_frames() {
        let (topo, a, r, _) = hidden_topology();
        let mut medium = Medium::new();
        let sa = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        // r itself transmits during a's frame.
        let _sr = medium.begin_tx(r, t(20), t(60), frame(1), 8);
        assert_eq!(
            medium.judge(sa, r, 0.9, 0.0, &topo),
            Verdict::Failed(DeliveryFailure::HalfDuplex)
        );
    }

    #[test]
    fn carrier_sense_hears_in_range_transmissions_only() {
        let (topo, a, r, b) = hidden_topology();
        let mut medium = Medium::new();
        let _ = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        assert!(medium.busy_for(r, t(50), &topo));
        // b cannot hear a: the channel sounds idle — the hidden-terminal
        // precondition.
        assert!(!medium.busy_for(b, t(50), &topo));
        // After the transmission ends the channel is idle for everyone.
        assert!(!medium.busy_for(r, t(100), &topo));
    }

    #[test]
    fn own_transmission_does_not_trip_carrier_sense() {
        let (topo, a, _, _) = hidden_topology();
        let mut medium = Medium::new();
        let _ = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        assert!(!medium.busy_for(a, t(50), &topo));
    }

    #[test]
    fn touching_intervals_do_not_overlap() {
        let (topo, a, r, b) = hidden_topology();
        let mut medium = Medium::new();
        let sa = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        let _sb = medium.begin_tx(b, t(100), t(200), frame(2), 8);
        // [0,100) and [100,200) share only the boundary instant.
        assert_eq!(medium.judge(sa, r, 0.9, 0.0, &topo), Verdict::Delivered);
    }

    #[test]
    fn prune_discards_stale_records() {
        let (_, a, _, b) = hidden_topology();
        let mut medium = Medium::new();
        medium.begin_tx(a, t(0), t(100), frame(0), 8);
        medium.begin_tx(b, t(500), t(600), frame(2), 8);
        medium.prune(t(300));
        assert_eq!(medium.record_count(), 1);
    }
}
