//! The shared broadcast medium.
//!
//! The medium tracks every transmission as a time interval. At the end
//! of a transmission, delivery is decided independently per receiver:
//!
//! 1. the receiver must be alive, distinct from the sender, and in
//!    range;
//! 2. a **half-duplex** radio that was itself transmitting during any
//!    part of the interval hears nothing;
//! 3. any *other* transmission audible at the receiver that overlaps the
//!    interval corrupts the frame (an **RF collision** — no capture
//!    effect); hidden terminals produce exactly this case;
//! 4. otherwise the frame survives an independent random-loss draw.
//!
//! Evaluating at transmission end is sound because any overlapping
//! transmission has, by definition, already *started* by then, so the
//! medium has its record.
//!
//! # Indexing and bounded scans
//!
//! Sequence numbers are dense, so records live in a [`VecDeque`] offset
//! by `base_seq`: [`Medium::record`] and [`Medium::end_tx`] are O(1)
//! and pruning pops only from the front (records are pushed in start
//! order, so everything older than the horizon is contiguous at the
//! front). Every query walks records **newest-first** and stops early:
//!
//! - [`Medium::busy_for`] visits only *active* (not yet ended)
//!   transmissions, counted per the `active` total — an interval
//!   containing `now` cannot have ended, because its `TxEnd` event
//!   would already have been dispatched.
//! - The collision scans ([`Medium::transmitting_during`],
//!   [`Medium::interference_at`]) stop once `record.start` is more than
//!   one maximum-observed airtime before the queried interval: starts
//!   are non-decreasing toward the front and no retained record lasts
//!   longer than `max_airtime`, so nothing earlier can overlap.
//!
//! Together with the per-node counts (`transmitting_during` exits
//! immediately when the sender has no retained records at all), each
//! judgment touches only the transmissions that can actually matter —
//! O(concurrent transmissions), not O(retained records).

use std::collections::VecDeque;

use crate::frame::Frame;
use crate::node::NodeId;
use crate::time::SimTime;
use crate::topology::Topology;

/// One transmission on the air (or recently completed).
#[derive(Debug, Clone)]
pub(crate) struct TxRecord {
    /// Unique, monotonically increasing transmission number.
    pub seq: u64,
    /// The transmitting node.
    pub sender: NodeId,
    /// First instant of the transmission.
    pub start: SimTime,
    /// One past the last instant of the transmission.
    pub end: SimTime,
    /// What is being transmitted. Taken (not cloned) by
    /// [`Medium::end_tx`] when the transmission leaves the air.
    frame: Option<Frame>,
    /// Bits on the air (payload + preamble), for receiver energy
    /// accounting.
    pub bits_on_air: u64,
    /// Whether the engine has dispatched this transmission's `TxEnd`.
    ended: bool,
}

impl TxRecord {
    fn overlaps(&self, start: SimTime, end: SimTime) -> bool {
        self.start < end && self.end > start
    }
}

/// Why a receiver did not get a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryFailure {
    /// The receiver's own radio was transmitting (half-duplex).
    HalfDuplex,
    /// Another audible transmission overlapped (RF collision).
    RfCollision,
    /// Independent random frame loss.
    RandomLoss,
}

/// Per-receiver delivery verdict for one transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    Delivered,
    Failed(DeliveryFailure),
}

#[derive(Debug, Default)]
pub(crate) struct Medium {
    /// Retained records in seq (= start-time) order; `records[i]` has
    /// sequence number `base_seq + i`.
    records: VecDeque<TxRecord>,
    /// Sequence number of `records[0]`.
    base_seq: u64,
    next_seq: u64,
    /// Transmissions on the air (begun, `TxEnd` not yet dispatched).
    active_total: u32,
    /// Per-node count of active transmissions, indexed by node.
    active_by_node: Vec<u32>,
    /// Per-node count of *retained* records (active or recent).
    retained_by_node: Vec<u32>,
    /// Longest airtime ever begun, in microseconds. Monotone, so every
    /// retained record's duration is bounded by it — the early-exit
    /// bound for the overlap scans.
    max_airtime_micros: u64,
}

impl Medium {
    pub fn new() -> Self {
        Medium::default()
    }

    /// Registers a transmission starting now; returns its sequence
    /// number.
    pub fn begin_tx(
        &mut self,
        sender: NodeId,
        start: SimTime,
        end: SimTime,
        frame: Frame,
        bits_on_air: u64,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        debug_assert!(
            self.records.back().is_none_or(|last| last.start <= start),
            "transmissions must begin in time order"
        );
        let index = sender.index();
        if index >= self.active_by_node.len() {
            self.active_by_node.resize(index + 1, 0);
            self.retained_by_node.resize(index + 1, 0);
        }
        self.active_by_node[index] += 1;
        self.retained_by_node[index] += 1;
        self.active_total += 1;
        self.max_airtime_micros = self.max_airtime_micros.max(end.since(start).as_micros());
        self.records.push_back(TxRecord {
            seq,
            sender,
            start,
            end,
            frame: Some(frame),
            bits_on_air,
            ended: false,
        });
        seq
    }

    /// Marks transmission `seq` off the air (its `TxEnd` is being
    /// dispatched) and takes its frame out of the record — O(1), no
    /// clone. Returns the frame with the record's bits-on-air, start,
    /// and end.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is unknown, already pruned, or already ended.
    pub fn end_tx(&mut self, seq: u64) -> (Frame, u64, SimTime, SimTime) {
        let index = usize::try_from(seq - self.base_seq).expect("record index fits usize");
        let record = self
            .records
            .get_mut(index)
            .expect("ending unknown transmission");
        assert!(!record.ended, "transmission {seq} ended twice");
        record.ended = true;
        self.active_total -= 1;
        self.active_by_node[record.sender.index()] -= 1;
        let frame = record.frame.take().expect("frame taken exactly once");
        (frame, record.bits_on_air, record.start, record.end)
    }

    /// Whether `listener` hears any ongoing foreign transmission at
    /// `now` (CSMA carrier sense).
    ///
    /// Scans only active transmissions: a record satisfying
    /// `start <= now < end` cannot have ended (its `TxEnd` fires at
    /// `end > now`), so the newest-first walk stops after `active_total`
    /// un-ended records.
    pub fn busy_for(&self, listener: NodeId, now: SimTime, topology: &Topology) -> bool {
        let mut remaining = self.active_total;
        for record in self.records.iter().rev() {
            if remaining == 0 {
                break;
            }
            if record.ended {
                continue;
            }
            if record.sender != listener
                && record.start <= now
                && record.end > now
                && topology.in_range(record.sender, listener)
            {
                return true;
            }
            remaining -= 1;
        }
        false
    }

    /// Whether the newest-first scan can stop at `record`: its start is
    /// more than one maximum airtime before the queried interval, so
    /// neither it nor anything earlier can reach into `[start, …)`.
    fn before_overlap_window(&self, record: &TxRecord, start: SimTime) -> bool {
        record.start.as_micros() < start.as_micros().saturating_sub(self.max_airtime_micros)
    }

    /// Whether `node`'s own radio is transmitting during `[start, end)`.
    fn transmitting_during(
        &self,
        node: NodeId,
        start: SimTime,
        end: SimTime,
        exclude_seq: u64,
    ) -> bool {
        let Some(&retained) = self.retained_by_node.get(node.index()) else {
            return false;
        };
        let mut remaining = retained;
        for record in self.records.iter().rev() {
            if remaining == 0 || self.before_overlap_window(record, start) {
                break;
            }
            if record.sender != node {
                continue;
            }
            if record.seq != exclude_seq && record.overlaps(start, end) {
                return true;
            }
            remaining -= 1;
        }
        false
    }

    /// Whether any foreign transmission audible at `receiver` overlaps
    /// `[start, end)` other than `exclude_seq`.
    ///
    /// Also serves as the DFA sender-side collision feedback: a frame
    /// slot collided iff some other audible transmission overlapped the
    /// sender's airtime.
    pub fn interference_at(
        &self,
        receiver: NodeId,
        start: SimTime,
        end: SimTime,
        exclude_seq: u64,
        topology: &Topology,
    ) -> bool {
        for record in self.records.iter().rev() {
            if self.before_overlap_window(record, start) {
                break;
            }
            if record.seq != exclude_seq
                && record.sender != receiver
                && record.overlaps(start, end)
                && topology.in_range(record.sender, receiver)
            {
                return true;
            }
        }
        false
    }

    /// Looks up a record by sequence number — O(1) via the `base_seq`
    /// offset. `None` if the record was pruned or never existed.
    pub fn record(&self, seq: u64) -> Option<&TxRecord> {
        let index = usize::try_from(seq.checked_sub(self.base_seq)?).ok()?;
        self.records.get(index)
    }

    /// Decides delivery of transmission `seq` to `receiver`.
    ///
    /// `loss_draw` is a pre-drawn uniform `[0,1)` variate (drawn by the
    /// engine so the medium itself stays deterministic and borrow-free).
    pub fn judge(
        &self,
        seq: u64,
        receiver: NodeId,
        loss_draw: f64,
        frame_loss: f64,
        topology: &Topology,
    ) -> Verdict {
        let record = self.record(seq).expect("judging unknown transmission");
        debug_assert!(topology.in_range(record.sender, receiver));
        if self.transmitting_during(receiver, record.start, record.end, seq) {
            Verdict::Failed(DeliveryFailure::HalfDuplex)
        } else if self.interference_at(receiver, record.start, record.end, seq, topology) {
            Verdict::Failed(DeliveryFailure::RfCollision)
        } else if loss_draw < frame_loss {
            Verdict::Failed(DeliveryFailure::RandomLoss)
        } else {
            Verdict::Delivered
        }
    }

    /// Drops records that can no longer overlap any future judgment: a
    /// judgment at time `now` only looks back one frame airtime, so
    /// anything ended before `horizon` is garbage.
    ///
    /// Pops from the front only. Starts are non-decreasing, but a long
    /// transmission can outlast a later short one, so a still-needed
    /// front record may retain a few stale ones behind it — harmless,
    /// since every query is bounded by the overlap window, not the
    /// retained count.
    pub fn prune(&mut self, horizon: SimTime) {
        while let Some(front) = self.records.front() {
            if front.end >= horizon {
                break;
            }
            let record = self.records.pop_front().expect("front exists");
            self.base_seq += 1;
            let index = record.sender.index();
            self.retained_by_node[index] -= 1;
            if !record.ended {
                // Only reachable when pruning past live transmissions
                // (never from the engine, whose horizon trails `now`).
                self.active_total -= 1;
                self.active_by_node[index] -= 1;
            }
        }
    }

    /// Number of retained records (for tests and diagnostics).
    #[cfg(test)]
    pub fn record_count(&self) -> usize {
        self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FramePayload;
    use crate::topology::Position;

    fn frame(src: u32) -> Frame {
        // Encode the full u32 little-endian: `src as u8` would alias every
        // node id >= 256 onto the same probe payload.
        Frame::new(
            NodeId(src),
            FramePayload::from_bytes(src.to_le_bytes().to_vec()).unwrap(),
        )
    }

    fn t(micros: u64) -> SimTime {
        SimTime::from_micros(micros)
    }

    /// a --- r --- b with a and b mutually hidden.
    fn hidden_topology() -> (Topology, NodeId, NodeId, NodeId) {
        let (topo, (a, r, b)) = Topology::hidden_terminal(100.0);
        (topo, a, r, b)
    }

    #[test]
    fn clean_delivery() {
        let (topo, a, r, _) = hidden_topology();
        let mut medium = Medium::new();
        let seq = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        assert_eq!(medium.judge(seq, r, 0.9, 0.0, &topo), Verdict::Delivered);
    }

    #[test]
    fn random_loss_applies_after_collision_checks() {
        let (topo, a, r, _) = hidden_topology();
        let mut medium = Medium::new();
        let seq = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        assert_eq!(
            medium.judge(seq, r, 0.05, 0.1, &topo),
            Verdict::Failed(DeliveryFailure::RandomLoss)
        );
        assert_eq!(medium.judge(seq, r, 0.5, 0.1, &topo), Verdict::Delivered);
    }

    #[test]
    fn hidden_terminals_collide_at_receiver() {
        let (topo, a, r, b) = hidden_topology();
        let mut medium = Medium::new();
        let sa = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        let sb = medium.begin_tx(b, t(50), t(150), frame(2), 8);
        // Both frames are corrupted at r.
        assert_eq!(
            medium.judge(sa, r, 0.9, 0.0, &topo),
            Verdict::Failed(DeliveryFailure::RfCollision)
        );
        assert_eq!(
            medium.judge(sb, r, 0.9, 0.0, &topo),
            Verdict::Failed(DeliveryFailure::RfCollision)
        );
    }

    #[test]
    fn non_overlapping_transmissions_do_not_collide() {
        let (topo, a, r, b) = hidden_topology();
        let mut medium = Medium::new();
        let sa = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        let sb = medium.begin_tx(b, t(100), t(200), frame(2), 8);
        assert_eq!(medium.judge(sa, r, 0.9, 0.0, &topo), Verdict::Delivered);
        assert_eq!(medium.judge(sb, r, 0.9, 0.0, &topo), Verdict::Delivered);
    }

    #[test]
    fn out_of_range_interferer_is_harmless() {
        // a transmits to r; b's simultaneous transmission is audible at r?
        // Move b out of r's range entirely: no interference.
        let mut topo = Topology::new(50.0);
        let a = topo.add(Position::new(0.0, 0.0));
        let r = topo.add(Position::new(40.0, 0.0));
        let b = topo.add(Position::new(500.0, 0.0));
        let mut medium = Medium::new();
        let sa = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        let _sb = medium.begin_tx(b, t(0), t(100), frame(2), 8);
        assert_eq!(medium.judge(sa, r, 0.9, 0.0, &topo), Verdict::Delivered);
    }

    #[test]
    fn half_duplex_receiver_misses_frames() {
        let (topo, a, r, _) = hidden_topology();
        let mut medium = Medium::new();
        let sa = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        // r itself transmits during a's frame.
        let _sr = medium.begin_tx(r, t(20), t(60), frame(1), 8);
        assert_eq!(
            medium.judge(sa, r, 0.9, 0.0, &topo),
            Verdict::Failed(DeliveryFailure::HalfDuplex)
        );
    }

    #[test]
    fn carrier_sense_hears_in_range_transmissions_only() {
        let (topo, a, r, b) = hidden_topology();
        let mut medium = Medium::new();
        let _ = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        assert!(medium.busy_for(r, t(50), &topo));
        // b cannot hear a: the channel sounds idle — the hidden-terminal
        // precondition.
        assert!(!medium.busy_for(b, t(50), &topo));
        // After the transmission ends the channel is idle for everyone.
        assert!(!medium.busy_for(r, t(100), &topo));
    }

    #[test]
    fn own_transmission_does_not_trip_carrier_sense() {
        let (topo, a, _, _) = hidden_topology();
        let mut medium = Medium::new();
        let _ = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        assert!(!medium.busy_for(a, t(50), &topo));
    }

    #[test]
    fn touching_intervals_do_not_overlap() {
        let (topo, a, r, b) = hidden_topology();
        let mut medium = Medium::new();
        let sa = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        let _sb = medium.begin_tx(b, t(100), t(200), frame(2), 8);
        // [0,100) and [100,200) share only the boundary instant.
        assert_eq!(medium.judge(sa, r, 0.9, 0.0, &topo), Verdict::Delivered);
    }

    #[test]
    fn prune_discards_stale_records() {
        let (_, a, _, b) = hidden_topology();
        let mut medium = Medium::new();
        medium.begin_tx(a, t(0), t(100), frame(0), 8);
        medium.begin_tx(b, t(500), t(600), frame(2), 8);
        medium.prune(t(300));
        assert_eq!(medium.record_count(), 1);
    }

    #[test]
    fn record_lookup_survives_pruning() {
        let (_, a, _, b) = hidden_topology();
        let mut medium = Medium::new();
        let sa = medium.begin_tx(a, t(0), t(100), frame(0), 8);
        let sb = medium.begin_tx(b, t(500), t(600), frame(2), 8);
        medium.prune(t(300));
        assert!(medium.record(sa).is_none(), "pruned record must be gone");
        let kept = medium.record(sb).expect("recent record retained");
        assert_eq!(kept.seq, sb);
        assert_eq!(kept.sender, b);
    }

    #[test]
    fn end_tx_takes_the_frame_and_clears_carrier_sense() {
        let (topo, a, r, _) = hidden_topology();
        let mut medium = Medium::new();
        let payload = frame(0);
        let seq = medium.begin_tx(a, t(0), t(100), payload.clone(), 8);
        assert!(medium.busy_for(r, t(50), &topo));
        let (taken, bits, start, end) = medium.end_tx(seq);
        assert_eq!(taken.src, payload.src);
        assert_eq!((bits, start, end), (8, t(0), t(100)));
        // Ended records are invisible to carrier sense even before any
        // pruning, whatever the probe time.
        assert!(!medium.busy_for(r, t(50), &topo));
        // ...but still judgeable: a later overlapping frame must still
        // see the collision.
        let other = medium.begin_tx(r, t(90), t(190), frame(1), 8);
        assert_eq!(
            medium.judge(other, a, 0.9, 0.0, &topo),
            Verdict::Failed(DeliveryFailure::HalfDuplex)
        );
    }

    #[test]
    fn probe_payloads_distinguish_wide_node_ids() {
        // Regression: the helper used to truncate the source id to u8,
        // so nodes 255, 256, and 511 all probed with indistinguishable
        // payloads (0xFF, 0x00, 0xFF) and record-attribution bugs for
        // ids >= 256 were invisible to every test in this module.
        let wide = [255u32, 256, 511];
        let frames: Vec<Frame> = wide.iter().map(|&id| frame(id)).collect();
        for (i, &id) in wide.iter().enumerate() {
            assert_eq!(frames[i].src, NodeId(id));
            let bytes = frames[i].payload.bytes();
            assert_eq!(
                u32::from_le_bytes(bytes.try_into().unwrap()),
                id,
                "payload must round-trip the full u32 id"
            );
            for j in (i + 1)..wide.len() {
                assert_ne!(
                    frames[i].payload, frames[j].payload,
                    "ids {} and {} must not alias",
                    wide[i], wide[j]
                );
            }
        }
        // End-to-end: a large topology keeps wide ids attributed to the
        // right sender through the medium.
        let mut topo = Topology::new(50.0);
        let mut ids = Vec::new();
        for i in 0..512u32 {
            ids.push(topo.add(Position::new(f64::from(i) * 1000.0, 0.0)));
        }
        let mut medium = Medium::new();
        let seq = medium.begin_tx(ids[511], t(0), t(100), frame(511), 8);
        assert_eq!(
            medium.record(seq).expect("record retained").sender,
            NodeId(511)
        );
        let (taken, ..) = medium.end_tx(seq);
        assert_eq!(taken.src, NodeId(511));
        assert_eq!(
            u32::from_le_bytes(taken.payload.bytes().try_into().unwrap()),
            511
        );
    }

    #[test]
    fn long_transmission_still_found_behind_later_short_ones() {
        // A long frame keeps interfering while several later short
        // frames come and go — the early-exit bound must not skip it.
        let (topo, a, r, b) = hidden_topology();
        let mut medium = Medium::new();
        let long = medium.begin_tx(a, t(0), t(1000), frame(0), 64);
        for i in 0..5u64 {
            let s = medium.begin_tx(b, t(100 + i * 10), t(105 + i * 10), frame(2), 4);
            let _ = medium.end_tx(s);
        }
        let late = medium.begin_tx(b, t(900), t(950), frame(2), 4);
        assert_eq!(
            medium.judge(late, r, 0.9, 0.0, &topo),
            Verdict::Failed(DeliveryFailure::RfCollision)
        );
        let _ = long;
    }
}
