//! Nodes, protocols, and the context protocols act through.
//!
//! A node hosts exactly one [`Protocol`] instance — the code under test.
//! The simulator invokes the protocol on three occasions (start, frame
//! reception, timer expiry) and hands it a [`Context`] through which it
//! can read the clock, draw randomness, transmit frames, and arm timers.
//! All effects are buffered as commands and applied by the engine after
//! the callback returns, which keeps protocol code free of borrow
//! gymnastics and keeps event ordering deterministic.

use core::fmt;

use rand::rngs::StdRng;

use crate::frame::{Frame, FrameError, FramePayload};
use crate::time::{SimDuration, SimTime};

/// Identifies a node within one simulation.
///
/// This is *simulator* bookkeeping, not a protocol address: the
/// address-free protocols built on this simulator never put it on the
/// air (except as Section 5.1-style ground-truth instrumentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a plain index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A pending timer: the caller's token plus a unique handle usable for
/// cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Timer {
    /// Caller-chosen discriminator (protocols multiplex their timers on
    /// it).
    pub token: u64,
    /// Unique handle for this arming, usable with
    /// [`Context::cancel_timer`].
    pub handle: TimerHandle,
}

/// Uniquely identifies one arming of a timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle(pub(crate) u64);

/// The behavior a node runs.
///
/// Implementations contain all protocol state; the simulator owns the
/// instances and exposes them through [`crate::sim::Simulator::protocol`]
/// for post-run inspection.
pub trait Protocol {
    /// Called once when the node boots (simulation start, or the moment
    /// the node is added).
    fn on_start(&mut self, ctx: &mut Context<'_>);

    /// Called when the radio delivers a frame.
    fn on_frame(&mut self, ctx: &mut Context<'_>, frame: &Frame);

    /// Called when a timer armed through [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: Timer);

    /// This node's live estimate of the contending population, read by
    /// the Dynamic-Frame Aloha MAC at each frame boundary to size the
    /// next frame ([`crate::mac::FrameSizing::Estimated`]).
    ///
    /// Must be a **pure read**: the MAC may query it any number of
    /// times. Protocols that track density (e.g. through a
    /// `DensityEstimator` fed by the listening window) return their
    /// current `T̂`; the default `None` makes the MAC fall back to its
    /// configured frame floor.
    fn population_estimate(&self, now: SimTime) -> Option<u64> {
        let _ = now;
        None
    }
}

/// Effects a protocol requested during a callback.
#[derive(Debug)]
pub(crate) enum Command {
    Send {
        node: NodeId,
        payload: FramePayload,
    },
    SetTimer {
        node: NodeId,
        at: SimTime,
        timer: Timer,
    },
    CancelTimer {
        handle: TimerHandle,
    },
}

/// The interface a protocol uses to act on the world.
///
/// A context is only valid for the duration of one callback.
pub struct Context<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) commands: &'a mut Vec<Command>,
    pub(crate) next_timer_handle: &'a mut u64,
    pub(crate) max_frame_bytes: usize,
    pub(crate) pending_frames: usize,
}

impl fmt::Debug for Context<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("now", &self.now)
            .field("node", &self.node)
            .finish_non_exhaustive()
    }
}

impl Context<'_> {
    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this callback runs on.
    #[must_use]
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The simulation's deterministic RNG.
    ///
    /// All protocol randomness must come from here so a run is
    /// reproducible from its seed.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// The radio's maximum frame payload, bytes.
    #[must_use]
    pub fn max_frame_bytes(&self) -> usize {
        self.max_frame_bytes
    }

    /// Frames this node has queued or in flight at the radio, including
    /// frames queued earlier in this same callback.
    ///
    /// Lets a protocol implement a *saturating* workload — "transmit a
    /// continuous stream of packets" (paper Section 5.1) — by topping
    /// the queue up whenever it runs dry, without modeling the MAC.
    #[must_use]
    pub fn pending_frames(&self) -> usize {
        self.pending_frames
            + self
                .commands
                .iter()
                .filter(|c| matches!(c, Command::Send { node, .. } if *node == self.node))
                .count()
    }

    /// Queues a frame for broadcast through the MAC.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::TooLarge`] if the payload exceeds the
    /// radio's frame size.
    pub fn send(&mut self, payload: FramePayload) -> Result<(), FrameError> {
        if payload.byte_len() > self.max_frame_bytes {
            return Err(FrameError::TooLarge {
                bytes: payload.byte_len(),
                max_bytes: self.max_frame_bytes,
            });
        }
        self.commands.push(Command::Send {
            node: self.node,
            payload,
        });
        Ok(())
    }

    /// Arms a timer to fire after `delay`, carrying `token` back to
    /// [`Protocol::on_timer`]. Returns a handle for cancellation.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerHandle {
        let handle = TimerHandle(*self.next_timer_handle);
        *self.next_timer_handle += 1;
        self.commands.push(Command::SetTimer {
            node: self.node,
            at: self.now + delay,
            timer: Timer { token, handle },
        });
        handle
    }

    /// Cancels a previously armed timer. Cancelling an already-fired or
    /// unknown handle is a no-op.
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        self.commands.push(Command::CancelTimer { handle });
    }
}

/// A standalone harness for unit-testing [`Protocol`] implementations
/// without building a full simulator.
///
/// Owns the RNG and command buffer a [`Context`] borrows; effects
/// requested by the protocol can be inspected afterwards.
///
/// # Examples
///
/// ```
/// use retri_netsim::node::ContextHarness;
/// use retri_netsim::{FramePayload, NodeId, SimTime};
///
/// let mut harness = ContextHarness::new(42);
/// harness.set_now(SimTime::from_millis(5));
/// let mut ctx = harness.context(NodeId(0));
/// ctx.send(FramePayload::from_bytes(vec![1, 2, 3]).unwrap()).unwrap();
/// drop(ctx);
/// assert_eq!(harness.sent_frames(), 1);
/// ```
#[derive(Debug)]
pub struct ContextHarness {
    rng: StdRng,
    commands: Vec<Command>,
    next_timer_handle: u64,
    now: SimTime,
    max_frame_bytes: usize,
}

impl ContextHarness {
    /// Creates a harness with a seeded RNG and a 27-byte frame limit
    /// (the paper's radio).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        use rand::SeedableRng as _;
        ContextHarness {
            rng: StdRng::seed_from_u64(seed),
            commands: Vec::new(),
            next_timer_handle: 0,
            now: SimTime::ZERO,
            max_frame_bytes: 27,
        }
    }

    /// Sets the time subsequent contexts will report.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Sets the frame limit subsequent contexts will enforce.
    pub fn set_max_frame_bytes(&mut self, max_frame_bytes: usize) {
        self.max_frame_bytes = max_frame_bytes;
    }

    /// Borrows a context for one protocol callback on `node`.
    pub fn context(&mut self, node: NodeId) -> Context<'_> {
        Context {
            now: self.now,
            node,
            rng: &mut self.rng,
            commands: &mut self.commands,
            next_timer_handle: &mut self.next_timer_handle,
            max_frame_bytes: self.max_frame_bytes,
            pending_frames: 0,
        }
    }

    /// Frames sent through contexts so far.
    #[must_use]
    pub fn sent_frames(&self) -> usize {
        self.commands
            .iter()
            .filter(|c| matches!(c, Command::Send { .. }))
            .count()
    }

    /// Timers armed through contexts so far.
    #[must_use]
    pub fn armed_timers(&self) -> usize {
        self.commands
            .iter()
            .filter(|c| matches!(c, Command::SetTimer { .. }))
            .count()
    }

    /// The payloads of all frames sent so far, in order.
    #[must_use]
    pub fn sent_payloads(&self) -> Vec<&FramePayload> {
        self.commands
            .iter()
            .filter_map(|c| match c {
                Command::Send { payload, .. } => Some(payload),
                _ => None,
            })
            .collect()
    }

    /// Clears recorded commands.
    pub fn clear(&mut self) {
        self.commands.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn context_parts() -> (StdRng, Vec<Command>, u64) {
        (StdRng::seed_from_u64(0), Vec::new(), 0)
    }

    #[test]
    fn send_validates_frame_size() {
        let (mut rng, mut commands, mut handles) = context_parts();
        let mut ctx = Context {
            now: SimTime::ZERO,
            node: NodeId(1),
            rng: &mut rng,
            commands: &mut commands,
            next_timer_handle: &mut handles,
            pending_frames: 0,
            max_frame_bytes: 4,
        };
        assert!(ctx
            .send(FramePayload::from_bytes(vec![0; 4]).unwrap())
            .is_ok());
        let err = ctx
            .send(FramePayload::from_bytes(vec![0; 5]).unwrap())
            .unwrap_err();
        assert_eq!(
            err,
            FrameError::TooLarge {
                bytes: 5,
                max_bytes: 4
            }
        );
        assert_eq!(commands.len(), 1);
    }

    #[test]
    fn timers_get_unique_handles_and_absolute_deadlines() {
        let (mut rng, mut commands, mut handles) = context_parts();
        let mut ctx = Context {
            now: SimTime::from_micros(100),
            node: NodeId(0),
            rng: &mut rng,
            commands: &mut commands,
            next_timer_handle: &mut handles,
            pending_frames: 0,
            max_frame_bytes: 27,
        };
        let h1 = ctx.set_timer(SimDuration::from_micros(50), 7);
        let h2 = ctx.set_timer(SimDuration::from_micros(10), 7);
        assert_ne!(h1, h2);
        match &commands[0] {
            Command::SetTimer { at, timer, .. } => {
                assert_eq!(at.as_micros(), 150);
                assert_eq!(timer.token, 7);
            }
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn cancel_pushes_command() {
        let (mut rng, mut commands, mut handles) = context_parts();
        let mut ctx = Context {
            now: SimTime::ZERO,
            node: NodeId(0),
            rng: &mut rng,
            commands: &mut commands,
            next_timer_handle: &mut handles,
            pending_frames: 0,
            max_frame_bytes: 27,
        };
        let h = ctx.set_timer(SimDuration::ZERO, 1);
        ctx.cancel_timer(h);
        assert_eq!(commands.len(), 2);
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(NodeId(4).index(), 4);
    }
}
