//! A deterministic discrete-event wireless sensor-network simulator.
//!
//! This crate is the substrate that stands in for the RETRI paper's
//! physical testbed (Radiometrix RPC 418 MHz packet radios attached to
//! laptops — Section 5). It models the properties the paper's
//! experiments actually depend on:
//!
//! - a **broadcast medium** with limited radio range, so hidden
//!   terminals arise naturally ([`medium`]);
//! - **RF frame collisions**: overlapping transmissions audible at the
//!   same receiver corrupt each other;
//! - **half-duplex radios** with small, fixed maximum frame sizes (the
//!   RPC's 27 bytes) and configurable bitrate ([`radio`]);
//! - a simple **CSMA / ALOHA MAC** with random backoff ([`mac`]);
//! - **per-bit energy metering**, because in sensor networks *every bit
//!   transmitted reduces the lifetime of the network* ([`energy`]);
//! - **network dynamics**: scheduled node movement, death, and birth
//!   ([`topology`], [`sim`]);
//! - **adversarial nodes**: an identifier-predicting eavesdropper that
//!   injects forged frames through a protocol-supplied codec
//!   ([`adversary`]).
//!
//! Everything is driven by a single seeded RNG, so a whole experiment is
//! reproducible from `(seed, configuration)` — which is what lets the
//! statistical validation of the paper's Figure 4 run in CI.
//!
//! # Quick start
//!
//! ```
//! use retri_netsim::prelude::*;
//!
//! /// A protocol that broadcasts one frame and counts receptions.
//! struct Beacon {
//!     heard: u32,
//! }
//!
//! impl Protocol for Beacon {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         if ctx.node_id() == NodeId(0) {
//!             ctx.send(FramePayload::from_bytes(b"hello".to_vec()).unwrap()).unwrap();
//!         }
//!     }
//!     fn on_frame(&mut self, _ctx: &mut Context<'_>, _frame: &Frame) {
//!         self.heard += 1;
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Context<'_>, _timer: Timer) {}
//! }
//!
//! let mut sim = SimBuilder::new(42)
//!     .radio(RadioConfig::radiometrix_rpc())
//!     .build(|_| Beacon { heard: 0 });
//! // Two nodes 10 m apart, well within range.
//! sim.add_node_at(Position::new(0.0, 0.0));
//! sim.add_node_at(Position::new(10.0, 0.0));
//! sim.run_until(SimTime::from_secs(1));
//! assert_eq!(sim.protocol(NodeId(1)).heard, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod energy;
pub mod fault;
pub mod frame;
pub mod mac;
pub mod medium;
pub mod node;
pub(crate) mod obs;
pub mod radio;
pub mod shard;
pub mod sim;
pub mod time;
pub mod topology;
pub mod trace;

/// Commonly used simulator types, importable in one line.
pub mod prelude {
    pub use crate::adversary::{AdversaryStats, Eavesdropper, EavesdropperConfig, InjectionCodec};
    pub use crate::energy::EnergyMeter;
    pub use crate::fault::{ChannelState, FaultModel, GilbertElliott, PartitionWindow};
    pub use crate::frame::{Frame, FramePayload};
    pub use crate::mac::{DfaStats, FrameSizing, MacConfig, MacMode};
    pub use crate::node::{Context, NodeId, Protocol, Timer};
    pub use crate::radio::RadioConfig;
    pub use crate::shard::{
        DegreeBalanced, GridHash, ShardStrategy, ShardedSim, ShardedSimBuilder, SpatialStripes,
    };
    pub use crate::sim::{MediumStats, SimBuilder, Simulator};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{Position, Topology};
}

pub use adversary::{AdversaryStats, Eavesdropper, EavesdropperConfig, InjectionCodec};
pub use fault::{ChannelState, FaultModel, GilbertElliott, PartitionWindow};
pub use frame::{Frame, FramePayload};
pub use mac::{DfaConfig, DfaStats, FrameSizing, MacConfig, MacMode};
pub use node::{Context, NodeId, Protocol, Timer};
pub use radio::RadioConfig;
pub use shard::{
    DegreeBalanced, GridHash, ShardStrategy, ShardedSim, ShardedSimBuilder, SpatialStripes,
    MIN_NODES_PER_SHARD,
};
pub use sim::{SimBuilder, Simulator};
pub use time::{SimDuration, SimTime};
pub use topology::Position;
