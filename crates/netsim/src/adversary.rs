//! Adversarial nodes: an eavesdropper that predicts identifiers and
//! injects forged frames to force reassembly collisions.
//!
//! The IPv4-ID selection taxonomy's *security* axis asks what an
//! attacker learns from identifiers on the air. For RETRI, the threat
//! is concrete: an eavesdropper that can guess a transaction identifier
//! *before or while it is in use* can transmit forged fragments under
//! that identifier and corrupt the victim's reassembly — turning a
//! probabilistic collision (Eq. 4) into a deliberate one. A predictable
//! selector (a sequential counter) hands the attacker every future
//! identifier after one observation; a uniform or keyed-permutation
//! selector leaves it guessing blind in a `2^H` pool.
//!
//! [`Eavesdropper`] implements that attacker as an ordinary simulator
//! [`Protocol`]: it listens to every frame it can hear, extracts
//! identifiers through a protocol-specific [`InjectionCodec`], predicts
//! the next `lookahead` identifiers under an assumed stride, and sprays
//! forged frames for its predictions on a periodic timer. Netsim knows
//! nothing about any particular wire format — the codec (implemented by
//! the protocol crate under attack, e.g. `retri-aff`) does all
//! encoding.
//!
//! All adversary randomness (injection jitter) comes from a dedicated
//! RNG stream seeded with [`adversary_stream_seed`] — mirroring the
//! fault channel's [`crate::fault::fault_stream_seed`] — so adding an
//! adversary never moves a draw of the simulator's main RNG and
//! adversary-free runs stay byte-identical to builds that predate this
//! module.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::frame::{Frame, FramePayload};
use crate::node::{Context, Protocol, Timer};
use crate::time::{SimDuration, SimTime};

/// Label absorbed into the simulation seed to derive the adversary RNG
/// stream (see [`adversary_stream_seed`]).
pub const ADVERSARY_STREAM_LABEL: &str = "netsim.adversary";

/// Timer token used for the periodic injection tick.
const INJECT_TICK: u64 = 1;

/// Derives the seed of the dedicated adversary RNG stream from the
/// simulation seed.
///
/// The derivation mirrors [`crate::fault::fault_stream_seed`]: start
/// from the root seed and absorb each byte of [`ADVERSARY_STREAM_LABEL`]
/// through SplitMix64. Crates that depend on `retri` can compute the
/// same value as `retri::seed::stream_seed(seed, "netsim.adversary")`;
/// `netsim` re-derives it locally to keep its dependency surface at
/// `rand` alone.
#[must_use]
pub fn adversary_stream_seed(seed: u64) -> u64 {
    let mut state = seed;
    for &byte in ADVERSARY_STREAM_LABEL.as_bytes() {
        state ^= u64::from(byte);
        state = rand::splitmix64(&mut state);
    }
    state
}

/// Translates between raw frames and the identifier space the attacker
/// reasons about.
///
/// Implemented by the protocol crate under attack; the simulator's
/// adversary machinery stays wire-format agnostic.
pub trait InjectionCodec {
    /// Extracts the transaction identifier from an overheard payload,
    /// if it parses as a frame carrying one.
    fn observed_id(&self, payload: &FramePayload) -> Option<u64>;

    /// Builds a forged payload under `id` designed to corrupt a
    /// victim's reassembly of that identifier. Returns `None` if `id`
    /// cannot be encoded.
    fn forge(&self, id: u64) -> Option<FramePayload>;
}

/// Tuning knobs for the [`Eavesdropper`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EavesdropperConfig {
    /// Bitmask of the identifier space under attack (predictions are
    /// computed modulo `id_mask + 1`).
    pub id_mask: u64,
    /// Assumed increment between a victim's consecutive identifiers.
    pub stride: u64,
    /// How many successive identifiers to predict per observation
    /// (covers observations the attacker's radio missed).
    pub lookahead: u64,
    /// Maximum number of live predictions; the oldest is dropped first.
    pub max_tracked: usize,
    /// Interval between injection ticks.
    pub inject_period: SimDuration,
    /// Forged frames transmitted per tick (round-robin over the live
    /// predictions).
    pub max_injections_per_tick: usize,
    /// How long a prediction stays live without being re-derived.
    pub prediction_ttl: SimDuration,
}

impl EavesdropperConfig {
    /// The standard next-id probe against counter-style selectors:
    /// stride 1, two ids of lookahead, a small tracked set, and a spray
    /// rate fast enough to land several forgeries inside one
    /// multi-fragment transaction at sensor-radio bitrates.
    #[must_use]
    pub fn stride_probe(id_mask: u64) -> Self {
        EavesdropperConfig {
            id_mask,
            stride: 1,
            lookahead: 2,
            max_tracked: 16,
            inject_period: SimDuration::from_micros(40_000),
            max_injections_per_tick: 2,
            prediction_ttl: SimDuration::from_secs(2),
        }
    }
}

/// Counters describing what an adversary heard and did during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdversaryStats {
    /// Frames overheard on the air.
    pub frames_heard: u64,
    /// Overheard frames that yielded an identifier through the codec.
    pub ids_extracted: u64,
    /// Predictions derived (refreshes of an already-tracked id count).
    pub predictions_made: u64,
    /// Forged frames handed to the radio.
    pub frames_injected: u64,
}

/// A passive listener that predicts upcoming transaction identifiers
/// and injects forged frames for them.
///
/// See the [module docs](self) for the attack model. The eavesdropper
/// is half-duplex like every other node — its forgeries contend for
/// the channel through the normal MAC.
#[derive(Debug, Clone)]
pub struct Eavesdropper<C> {
    codec: C,
    config: EavesdropperConfig,
    rng: StdRng,
    /// Live predictions as `(id, expires_at)`, oldest first.
    predictions: Vec<(u64, SimTime)>,
    /// Round-robin position in `predictions` for injection fairness.
    cursor: usize,
    stats: AdversaryStats,
}

impl<C: InjectionCodec> Eavesdropper<C> {
    /// Creates an eavesdropper.
    ///
    /// `stream_seed` should come from [`adversary_stream_seed`] so the
    /// attacker's randomness is independent of the simulation's main
    /// RNG stream.
    #[must_use]
    pub fn new(codec: C, config: EavesdropperConfig, stream_seed: u64) -> Self {
        Eavesdropper {
            codec,
            config,
            rng: StdRng::seed_from_u64(stream_seed),
            predictions: Vec::new(),
            cursor: 0,
            stats: AdversaryStats::default(),
        }
    }

    /// What the adversary heard and did so far.
    #[must_use]
    pub fn stats(&self) -> AdversaryStats {
        self.stats
    }

    /// The identifiers currently predicted to appear next on the air.
    #[must_use]
    pub fn predicted_ids(&self) -> Vec<u64> {
        self.predictions.iter().map(|&(id, _)| id).collect()
    }

    fn arm_tick(&mut self, ctx: &mut Context<'_>) {
        // Jitter desynchronizes the spray from the victims' MAC timing;
        // drawn from the adversary's own stream, never the main RNG.
        let period = self.config.inject_period.as_micros().max(1);
        let jitter = self.rng.gen_range(0..=period / 4);
        ctx.set_timer(SimDuration::from_micros(period + jitter), INJECT_TICK);
    }

    fn remember(&mut self, id: u64, expires: SimTime) {
        self.stats.predictions_made += 1;
        if let Some(entry) = self.predictions.iter_mut().find(|(known, _)| *known == id) {
            entry.1 = entry.1.max(expires);
            return;
        }
        self.predictions.push((id, expires));
        if self.predictions.len() > self.config.max_tracked {
            self.predictions.remove(0);
            self.cursor = self.cursor.saturating_sub(1);
        }
    }

    fn prune(&mut self, now: SimTime) {
        self.predictions.retain(|&(_, expires)| expires > now);
        if self.predictions.is_empty() {
            self.cursor = 0;
        } else {
            self.cursor %= self.predictions.len();
        }
    }
}

impl<C: InjectionCodec> Protocol for Eavesdropper<C> {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.arm_tick(ctx);
    }

    fn on_frame(&mut self, ctx: &mut Context<'_>, frame: &Frame) {
        self.stats.frames_heard += 1;
        let Some(id) = self.codec.observed_id(&frame.payload) else {
            return;
        };
        self.stats.ids_extracted += 1;
        let expires = ctx.now() + self.config.prediction_ttl;
        let modulus_mask = self.config.id_mask;
        for step in 1..=self.config.lookahead {
            let predicted = id.wrapping_add(self.config.stride.wrapping_mul(step)) & modulus_mask;
            self.remember(predicted, expires);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: Timer) {
        if timer.token != INJECT_TICK {
            return;
        }
        self.prune(ctx.now());
        let burst = self
            .config
            .max_injections_per_tick
            .min(self.predictions.len());
        for _ in 0..burst {
            let (id, _) = self.predictions[self.cursor];
            self.cursor = (self.cursor + 1) % self.predictions.len();
            if let Some(payload) = self.codec.forge(id) {
                if ctx.send(payload).is_ok() {
                    self.stats.frames_injected += 1;
                }
            }
        }
        self.arm_tick(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{ContextHarness, NodeId};

    /// Toy codec: the identifier is the first payload byte.
    struct ByteCodec;

    impl InjectionCodec for ByteCodec {
        fn observed_id(&self, payload: &FramePayload) -> Option<u64> {
            payload.bytes().first().copied().map(u64::from)
        }

        fn forge(&self, id: u64) -> Option<FramePayload> {
            FramePayload::from_bytes(vec![id as u8, 0xFF]).ok()
        }
    }

    fn config() -> EavesdropperConfig {
        EavesdropperConfig::stride_probe(0xFF)
    }

    fn frame(id: u8) -> Frame {
        Frame::new(NodeId(0), FramePayload::from_bytes(vec![id]).unwrap())
    }

    #[test]
    fn stream_seed_absorbs_the_label() {
        let derived = adversary_stream_seed(42);
        assert_ne!(derived, 42);
        assert_ne!(derived, adversary_stream_seed(43));
        // Distinct from the fault stream of the same root seed.
        assert_ne!(derived, crate::fault::fault_stream_seed(42));
        // Stable: this value is provenance; changing it invalidates
        // recorded adversarial runs.
        assert_eq!(adversary_stream_seed(0), {
            let mut state = 0u64;
            for &b in ADVERSARY_STREAM_LABEL.as_bytes() {
                state ^= u64::from(b);
                state = rand::splitmix64(&mut state);
            }
            state
        });
    }

    #[test]
    fn observation_derives_strided_predictions() {
        let mut adv = Eavesdropper::new(ByteCodec, config(), 1);
        let mut harness = ContextHarness::new(0);
        adv.on_frame(&mut harness.context(NodeId(9)), &frame(10));
        assert_eq!(adv.predicted_ids(), vec![11, 12]);
        assert_eq!(adv.stats().ids_extracted, 1);
        assert_eq!(adv.stats().predictions_made, 2);
    }

    #[test]
    fn predictions_wrap_at_the_space_boundary() {
        let mut adv = Eavesdropper::new(ByteCodec, config(), 1);
        let mut harness = ContextHarness::new(0);
        adv.on_frame(&mut harness.context(NodeId(9)), &frame(255));
        assert_eq!(adv.predicted_ids(), vec![0, 1]);
    }

    #[test]
    fn tick_injects_forged_frames_and_rearms() {
        let mut adv = Eavesdropper::new(ByteCodec, config(), 1);
        let mut harness = ContextHarness::new(0);

        adv.on_start(&mut harness.context(NodeId(9)));
        assert_eq!(harness.armed_timers(), 1);

        adv.on_frame(&mut harness.context(NodeId(9)), &frame(20));

        harness.set_now(SimTime::from_millis(50));
        adv.on_timer(
            &mut harness.context(NodeId(9)),
            Timer {
                token: INJECT_TICK,
                handle: crate::node::TimerHandle(0),
            },
        );

        assert_eq!(adv.stats().frames_injected, 2);
        assert_eq!(harness.sent_frames(), 2);
        let sent: Vec<u8> = harness
            .sent_payloads()
            .iter()
            .map(|p| p.bytes()[0])
            .collect();
        assert_eq!(sent, vec![21, 22]);
        assert_eq!(harness.armed_timers(), 2, "tick rearms itself");
    }

    #[test]
    fn expired_predictions_are_pruned() {
        let mut adv = Eavesdropper::new(ByteCodec, config(), 1);
        let mut harness = ContextHarness::new(0);
        adv.on_frame(&mut harness.context(NodeId(9)), &frame(5));
        assert_eq!(adv.predicted_ids().len(), 2);

        // Far past the prediction TTL, a tick injects nothing.
        harness.set_now(SimTime::from_secs(60));
        adv.on_timer(
            &mut harness.context(NodeId(9)),
            Timer {
                token: INJECT_TICK,
                handle: crate::node::TimerHandle(0),
            },
        );
        assert_eq!(adv.stats().frames_injected, 0);
        assert!(adv.predicted_ids().is_empty());
    }

    #[test]
    fn tracked_set_is_bounded_oldest_first() {
        let mut adv = Eavesdropper::new(ByteCodec, config(), 1);
        let mut harness = ContextHarness::new(0);
        {
            let mut ctx = harness.context(NodeId(9));
            for id in 0..20u8 {
                adv.on_frame(&mut ctx, &frame(id * 10));
            }
        }
        assert!(adv.predicted_ids().len() <= config().max_tracked);
        // The newest observation's predictions are still tracked.
        assert!(adv.predicted_ids().contains(&191));
    }

    #[test]
    fn refreshing_a_prediction_does_not_duplicate_it() {
        let mut adv = Eavesdropper::new(ByteCodec, config(), 1);
        let mut harness = ContextHarness::new(0);
        {
            let mut ctx = harness.context(NodeId(9));
            adv.on_frame(&mut ctx, &frame(30));
            adv.on_frame(&mut ctx, &frame(30));
        }
        assert_eq!(adv.predicted_ids(), vec![31, 32]);
        assert_eq!(adv.stats().predictions_made, 4);
    }

    #[test]
    fn unparseable_frames_are_counted_but_ignored() {
        struct RejectAll;
        impl InjectionCodec for RejectAll {
            fn observed_id(&self, _: &FramePayload) -> Option<u64> {
                None
            }
            fn forge(&self, _: u64) -> Option<FramePayload> {
                None
            }
        }
        let mut adv = Eavesdropper::new(RejectAll, config(), 1);
        let mut harness = ContextHarness::new(0);
        adv.on_frame(&mut harness.context(NodeId(9)), &frame(1));
        assert_eq!(adv.stats().frames_heard, 1);
        assert_eq!(adv.stats().ids_extracted, 0);
        assert!(adv.predicted_ids().is_empty());
    }
}
