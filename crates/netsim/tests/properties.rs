//! Property-based tests of simulator invariants.

use proptest::prelude::*;
use retri_netsim::prelude::*;

/// Every node sends `per_node` frames at start and counts receptions.
struct Chatter {
    per_node: u32,
    heard: u32,
}

impl Protocol for Chatter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for _ in 0..self.per_node {
            ctx.send(FramePayload::from_bytes(vec![0x55; 8]).unwrap())
                .unwrap();
        }
    }
    fn on_frame(&mut self, _ctx: &mut Context<'_>, _frame: &Frame) {
        self.heard += 1;
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _timer: Timer) {}
}

fn build_sim(seed: u64, nodes: usize, per_node: u32, loss: f64, csma: bool) -> Simulator<Chatter> {
    let mac = if csma {
        MacConfig::csma()
    } else {
        MacConfig::aloha()
    };
    let mut sim = SimBuilder::new(seed)
        .radio(RadioConfig::radiometrix_rpc().with_frame_loss(loss))
        .mac(mac)
        .range(100.0)
        .build(move |_| Chatter { per_node, heard: 0 });
    // Full mesh placement.
    let topo = Topology::full_mesh(nodes, 100.0);
    for id in topo.node_ids() {
        sim.add_node_at(topo.position(id));
    }
    sim
}

use retri_netsim::topology::Topology;

/// A deployment-scale smoke test: hundreds of nodes, sparse periodic
/// traffic, sane wall-clock time. Guards against accidental quadratic
/// blowups in the engine's hot paths.
#[test]
fn large_sparse_network_simulates_quickly() {
    struct Sparse;
    impl Protocol for Sparse {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            // Stagger by node id so the channel stays sparse.
            let delay = SimDuration::from_millis(10 * u64::from(ctx.node_id().0));
            ctx.set_timer(delay, 0);
        }
        fn on_frame(&mut self, _ctx: &mut Context<'_>, _frame: &Frame) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: Timer) {
            let _ = ctx.send(FramePayload::from_bytes(vec![1; 8]).unwrap());
            ctx.set_timer(SimDuration::from_secs(5), 0);
        }
    }
    let mut sim = SimBuilder::new(77).range(60.0).build(|_| Sparse);
    // A 20x20 grid, 400 nodes, nearest-neighbor connectivity.
    let topo = retri_netsim::topology::Topology::grid(20, 20, 50.0, 60.0);
    for id in topo.node_ids() {
        sim.add_node_at(topo.position(id));
    }
    let started = std::time::Instant::now();
    sim.run_until(SimTime::from_secs(30));
    assert!(sim.stats().frames_sent >= 400 * 6);
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "400-node simulation took {:?}",
        started.elapsed()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every delivery attempt ends in exactly one bucket,
    /// and deliveries never exceed frames_sent × (nodes − 1).
    #[test]
    fn delivery_accounting_is_conserved(
        seed in any::<u64>(),
        nodes in 2usize..6,
        per_node in 1u32..6,
        loss in 0.0f64..0.5,
        csma in any::<bool>(),
    ) {
        let mut sim = build_sim(seed, nodes, per_node, loss, csma);
        sim.run_until(SimTime::from_secs(60));
        let stats = sim.stats();
        prop_assert_eq!(stats.frames_sent, nodes as u64 * per_node as u64);
        let attempts = stats.frames_sent * (nodes as u64 - 1);
        let accounted = stats.deliveries
            + stats.rf_collisions
            + stats.half_duplex_losses
            + stats.random_losses;
        prop_assert_eq!(accounted, attempts);
        // Protocol-level receptions equal medium-level deliveries.
        let heard: u64 = sim.node_ids().map(|n| sim.protocol(n).heard as u64).sum();
        prop_assert_eq!(heard, stats.deliveries);
    }

    /// Determinism: identical seeds and configs produce identical
    /// outcomes; different seeds are allowed to differ.
    #[test]
    fn same_seed_same_world(
        seed in any::<u64>(),
        nodes in 2usize..5,
        per_node in 1u32..5,
    ) {
        let mut a = build_sim(seed, nodes, per_node, 0.1, true);
        let mut b = build_sim(seed, nodes, per_node, 0.1, true);
        a.run_until(SimTime::from_secs(60));
        b.run_until(SimTime::from_secs(60));
        prop_assert_eq!(a.stats(), b.stats());
        for n in a.node_ids() {
            prop_assert_eq!(a.meter(n), b.meter(n));
            prop_assert_eq!(a.protocol(n).heard, b.protocol(n).heard);
        }
    }

    /// Energy conservation: bits received across the network never
    /// exceed bits transmitted times the possible audience size.
    #[test]
    fn energy_bounded_by_broadcast(
        seed in any::<u64>(),
        nodes in 2usize..6,
        per_node in 1u32..5,
    ) {
        let mut sim = build_sim(seed, nodes, per_node, 0.0, true);
        sim.run_until(SimTime::from_secs(60));
        let total = sim.total_meter();
        prop_assert!(total.rx_bits() <= total.tx_bits() * (nodes as u64 - 1));
        prop_assert_eq!(total.tx_frames(), sim.stats().frames_sent);
    }

    /// A duty cycle's awake_at samples approximate its on fraction over
    /// many periods, for arbitrary period/fraction/phase.
    #[test]
    fn duty_cycle_fraction_is_honored(
        period_ms in 1u64..500,
        on_fraction in 0.05f64..=1.0,
        phase_ms in 0u64..500,
    ) {
        use retri_netsim::radio::DutyCycle;
        let duty = DutyCycle::new(
            SimDuration::from_millis(period_ms),
            on_fraction,
            SimDuration::from_millis(phase_ms),
        );
        let period = period_ms * 1000;
        let samples = 10_000u64;
        let awake = (0..samples)
            .filter(|i| {
                // Sample uniformly across 100 periods.
                let t = i * period * 100 / samples;
                duty.awake_at(SimTime::from_micros(t))
            })
            .count() as f64;
        let measured = awake / samples as f64;
        prop_assert!(
            (measured - on_fraction).abs() < 0.05,
            "measured {measured} vs configured {on_fraction}"
        );
    }

    /// The incrementally maintained adjacency cache agrees with a
    /// brute-force recomputation after every topology mutation: random
    /// `add` / `set_position` / `set_alive` sequences never desync the
    /// cached `neighbors` lists or the `in_range` answers.
    #[test]
    fn adjacency_cache_matches_brute_force(
        seed in any::<u64>(),
        ops in 1usize..60,
    ) {
        use rand::prelude::*;
        use retri_netsim::topology::Position;

        let range = 60.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let random_position = |rng: &mut StdRng| {
            // A ~3-range square, so pairs land both in and out of range.
            Position::new(rng.gen_range(0.0..180.0), rng.gen_range(0.0..180.0))
        };
        let mut topo = Topology::new(range);
        for _ in 0..3 {
            let p = random_position(&mut rng);
            topo.add(p);
        }
        for _ in 0..ops {
            let nodes = topo.node_ids().count() as u32;
            match rng.gen_range(0u32..4) {
                0 => {
                    let p = random_position(&mut rng);
                    topo.add(p);
                }
                1 => {
                    let node = NodeId(rng.gen_range(0..nodes));
                    let p = random_position(&mut rng);
                    topo.set_position(node, p);
                }
                _ => {
                    let node = NodeId(rng.gen_range(0..nodes));
                    let alive = rng.gen_range(0u32..2) == 0;
                    topo.set_alive(node, alive);
                }
            }
            // Ground truth uses the same squared-distance predicate the
            // cache is specified against: live, distinct, d² ≤ range².
            let brute_in_range = |a: NodeId, b: NodeId| {
                a != b
                    && topo.is_alive(a)
                    && topo.is_alive(b)
                    && topo.position(a).distance_sq_to(topo.position(b)) <= range * range
            };
            for a in topo.node_ids() {
                let brute: Vec<NodeId> =
                    topo.node_ids().filter(|&b| brute_in_range(a, b)).collect();
                let cached: Vec<NodeId> = topo.neighbors(a).collect();
                prop_assert_eq!(&cached, &brute, "neighbor cache desync at {:?}", a);
                prop_assert_eq!(topo.degree(a), brute.len());
                for b in topo.node_ids() {
                    prop_assert_eq!(topo.in_range(a, b), brute_in_range(a, b));
                }
            }
        }
    }

    /// Tracing is observation only: a traced run and an untraced run of
    /// the same seed produce identical statistics and energy meters.
    #[test]
    fn tracing_does_not_perturb_the_simulation(
        seed in any::<u64>(),
        nodes in 2usize..6,
        per_node in 1u32..5,
        csma in any::<bool>(),
    ) {
        let mut plain = build_sim(seed, nodes, per_node, 0.2, csma);
        let mut traced = build_sim(seed, nodes, per_node, 0.2, csma);
        traced.enable_trace(4096);
        plain.run_until(SimTime::from_secs(60));
        traced.run_until(SimTime::from_secs(60));
        prop_assert_eq!(plain.stats(), traced.stats());
        for n in plain.node_ids() {
            prop_assert_eq!(plain.meter(n), traced.meter(n));
            prop_assert_eq!(plain.protocol(n).heard, traced.protocol(n).heard);
        }
        // The traced run actually recorded something.
        prop_assert!(traced.tracer().expect("enabled").events().count() > 0);
    }

    /// With a lossless radio and a single sender, every frame reaches
    /// every other node exactly once (no spurious losses in a quiet
    /// network).
    #[test]
    fn quiet_network_is_lossless(seed in any::<u64>(), nodes in 2usize..6) {
        let mut sim = SimBuilder::new(seed)
            .range(100.0)
            .build(|id| Chatter { per_node: if id == NodeId(0) { 7 } else { 0 }, heard: 0 });
        let topo = Topology::full_mesh(nodes, 100.0);
        for id in topo.node_ids() {
            sim.add_node_at(topo.position(id));
        }
        sim.run_until(SimTime::from_secs(60));
        for n in sim.node_ids().skip(1) {
            prop_assert_eq!(sim.protocol(n).heard, 7);
        }
    }
}
