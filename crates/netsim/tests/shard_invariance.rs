//! Property-based shard-count invariance (ISSUE 6, satellite 4).
//!
//! The sharded engine's core contract: output is a pure function of
//! (seed, topology, workload) and never of the shard count or the
//! execution engine. These properties drive randomized small
//! topologies through K ∈ {1, 2, 4, 8} shards — in the gated inline
//! loop *and* on forced worker threads — and require byte-identical
//! traces, stats, energy, and protocol state every time. The fault
//! case layers a Gilbert–Elliott channel, churn, and a partition on
//! top, exercising the per-node fault RNG streams.

use proptest::prelude::*;
use retri_netsim::prelude::*;
use retri_netsim::radio::DutyCycle;
use retri_netsim::trace::TraceEvent;

/// Sends `to_send` staggered frames; counts receptions.
struct Chatter {
    to_send: u32,
    heard: u32,
}

impl Protocol for Chatter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Stagger by node id so CSMA backoff and collisions both occur.
        let phase = SimDuration::from_micros(137 * (u64::from(ctx.node_id().0) + 1));
        ctx.set_timer(phase, 0);
    }
    fn on_frame(&mut self, _ctx: &mut Context<'_>, _frame: &Frame) {
        self.heard += 1;
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: Timer) {
        if self.to_send > 0 {
            self.to_send -= 1;
            let _ = ctx.send(FramePayload::from_bytes(vec![0xC3; 11]).unwrap());
            ctx.set_timer(SimDuration::from_millis(40), 0);
        }
    }
}

/// Everything the engine promises to keep invariant across K.
#[derive(Debug, PartialEq)]
struct Digest {
    stats: MediumStats,
    dfa: DfaStats,
    heard: Vec<u32>,
    energy: EnergyMeter,
    traces: Vec<TraceEvent>,
}

/// The three MACs the engine ships; all of them must be shard-count
/// invariant (DFA exercises the feedback path through the receive
/// phase and the per-node slot draws).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MacKind {
    Aloha,
    Csma,
    Dfa,
}

fn mac_kind() -> impl Strategy<Value = MacKind> {
    (0u8..3).prop_map(|k| match k {
        0 => MacKind::Aloha,
        1 => MacKind::Csma,
        _ => MacKind::Dfa,
    })
}

fn mac_for(kind: MacKind, nodes: usize) -> MacConfig {
    match kind {
        MacKind::Aloha => MacConfig::aloha(),
        MacKind::Csma => MacConfig::csma(),
        // A slot comfortably covering the 11-byte test payload's
        // airtime on the default radio.
        MacKind::Dfa => MacConfig::dfa_known(SimDuration::from_millis(8), nodes as u32),
    }
}

/// Node positions on a jittered grid: clustered enough to interfere,
/// spread enough that shards own distinct cells.
fn positions(nodes: usize, jitter: u64) -> Vec<Position> {
    (0..nodes)
        .map(|i| {
            let col = (i % 6) as f64;
            let row = (i / 6) as f64;
            // Deterministic per-node jitter, no RNG needed.
            let j = ((i as u64).wrapping_mul(jitter | 1) % 17) as f64;
            Position::new(col * 28.0 + j, row * 28.0 + j * 0.5)
        })
        .collect()
}

fn run_one(
    seed: u64,
    nodes: usize,
    jitter: u64,
    kind: MacKind,
    faulty: bool,
    shards: usize,
    force_threads: bool,
) -> Digest {
    let mac = mac_for(kind, nodes);
    let mut topo = Topology::new(45.0);
    for p in positions(nodes, jitter) {
        topo.add(p);
    }
    let mut builder = ShardedSimBuilder::new(seed).mac(mac).range(45.0);
    if faulty {
        builder = builder.faults(
            FaultModel::none()
                .with_channel(GilbertElliott::bursty(
                    ChannelState {
                        frame_erasure: 0.03,
                        bit_error_rate: 1e-3,
                    },
                    ChannelState {
                        frame_erasure: 0.25,
                        bit_error_rate: 1e-2,
                    },
                    0.08,
                    0.35,
                ))
                .with_churn_event(SimTime::from_millis(120), NodeId(1), false)
                .with_churn_event(SimTime::from_millis(400), NodeId(1), true)
                .with_partition(PartitionWindow::new(
                    SimTime::from_millis(150),
                    SimTime::from_millis(450),
                    vec![NodeId(0), NodeId(2)],
                )),
        );
    }
    let mut sim = builder
        .shards(shards)
        .build_with_topology(&topo, |id| Chatter {
            to_send: 1 + id.0 % 3,
            heard: 0,
        });
    if force_threads {
        sim.set_force_threads(true);
    }
    sim.enable_trace(50_000);
    // A mid-run move forces an ownership rebalance between the two
    // run_until calls below.
    sim.schedule_move(
        SimTime::from_millis(200),
        NodeId((nodes as u32) - 1),
        Position::new(300.0, 300.0),
    );
    if faulty && nodes > 3 {
        sim.set_duty_cycle(
            NodeId(3),
            Some(DutyCycle::new(
                SimDuration::from_millis(30),
                0.5,
                SimDuration::ZERO,
            )),
        );
    }
    sim.run_until(SimTime::from_millis(350));
    sim.run_until(SimTime::from_millis(900));
    Digest {
        stats: sim.stats(),
        dfa: sim.dfa_stats(),
        heard: sim.node_ids().map(|id| sim.protocol(id).heard).collect(),
        energy: sim.total_meter(),
        traces: sim
            .tracer()
            .map(|t| t.events().copied().collect())
            .unwrap_or_default(),
    }
}

/// Like [`run_one`], but stressing the O(active) machinery (ISSUE 7):
/// randomized mid-run moves — including one that brings a distant node
/// into the cluster, forcing interest-set gains and ghost backfills —
/// followed by a long fully-idle tail the engine must fast-forward
/// through without changing an output byte. Returns the digest plus
/// the number of synchronization windows actually executed.
fn run_dynamic(
    seed: u64,
    nodes: usize,
    jitter: u64,
    kind: MacKind,
    moves: &[(u16, u8, u8, u8)],
    shards: usize,
    force_threads: bool,
) -> (Digest, u64) {
    let mac = mac_for(kind, nodes);
    let mut topo = Topology::new(45.0);
    for p in positions(nodes, jitter) {
        topo.add(p);
    }
    // A distant loner: it transmits unheard until a scheduled move
    // drops it into the cluster, mid-flight frames and all.
    topo.add(Position::new(400.0, 400.0));
    let mut sim = ShardedSimBuilder::new(seed)
        .mac(mac)
        .range(45.0)
        .shards(shards)
        .build_with_topology(&topo, |id| Chatter {
            to_send: 1 + id.0 % 3,
            heard: 0,
        });
    if force_threads {
        sim.set_force_threads(true);
    }
    sim.enable_trace(50_000);
    sim.schedule_move(
        SimTime::from_millis(230),
        NodeId(nodes as u32),
        Position::new(30.0, 30.0),
    );
    // Randomized cell-crossing moves on a 9 m lattice (cell pitch is
    // the 45 m range, so these hop interest cells constantly).
    for &(ms, sel, col, row) in moves {
        sim.schedule_move(
            SimTime::from_micros(5_000 + u64::from(ms) * 997),
            NodeId(u32::from(sel) % (nodes as u32 + 1)),
            Position::new(f64::from(col % 20) * 9.0, f64::from(row % 20) * 9.0),
        );
    }
    sim.run_until(SimTime::from_millis(350));
    // All traffic dies out well before 30 s; the tail is pure idle
    // time that window skipping must cross without executing windows.
    sim.run_until(SimTime::from_secs(30));
    let digest = Digest {
        stats: sim.stats(),
        dfa: sim.dfa_stats(),
        heard: sim.node_ids().map(|id| sim.protocol(id).heard).collect(),
        energy: sim.total_meter(),
        traces: sim
            .tracer()
            .map(|t| t.events().copied().collect())
            .unwrap_or_default(),
    };
    (digest, sim.windows_executed())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Gated (inline-loop) runs: identical output for every K.
    #[test]
    fn shard_count_never_changes_output(
        seed in 1u64..5_000,
        nodes in 6usize..30,
        jitter in 0u64..1_000,
        mac in mac_kind(),
    ) {
        let reference = run_one(seed, nodes, jitter, mac, false, 1, false);
        prop_assert!(reference.stats.frames_sent > 0);
        if mac == MacKind::Dfa {
            // The DFA path actually ran, and no transmission got more
            // than one feedback verdict (frames still in flight at the
            // deadline have none yet).
            prop_assert!(reference.dfa.frames > 0, "no DFA frames drawn");
            prop_assert!(
                reference.dfa.attempts() <= reference.stats.frames_sent,
                "more feedback verdicts than transmissions",
            );
        }
        for shards in [2usize, 4, 8] {
            let got = run_one(seed, nodes, jitter, mac, false, shards, false);
            prop_assert_eq!(&got, &reference, "diverged at {} shards", shards);
        }
    }

    /// The fault pipeline (channel model, churn, partition, duty
    /// cycle) draws from per-node streams, so it must be invariant
    /// too — this is the regression class behind `sim_fault_channel`.
    #[test]
    fn fault_models_are_shard_count_invariant(
        seed in 1u64..5_000,
        nodes in 6usize..24,
        jitter in 0u64..1_000,
        mac in mac_kind(),
    ) {
        let reference = run_one(seed, nodes, jitter, mac, true, 1, false);
        for shards in [2usize, 4, 8] {
            let got = run_one(seed, nodes, jitter, mac, true, shards, false);
            prop_assert_eq!(&got, &reference, "faulty run diverged at {} shards", shards);
        }
    }

    /// Delta-routed ghost maintenance and O(active) window skipping
    /// (ISSUE 7): randomized cell-crossing moves — inbound, outbound,
    /// mid-flight — plus a ~29 s fully-idle tail must leave the output
    /// byte-identical for every shard count and both engines, and the
    /// idle tail must cost zero executed windows (the window count is
    /// itself invariant, because the window sequence is a function of
    /// the global event set alone).
    #[test]
    fn dynamics_and_window_skipping_never_change_output(
        seed in 1u64..5_000,
        nodes in 6usize..20,
        jitter in 0u64..1_000,
        mac in mac_kind(),
        moves in proptest::collection::vec(
            (0u16..900, any::<u8>(), any::<u8>(), any::<u8>()),
            0..6,
        ),
    ) {
        let (reference, windows) = run_dynamic(seed, nodes, jitter, mac, &moves, 1, false);
        prop_assert!(reference.stats.frames_sent > 0);
        // 30 s of timeline is 60k lookahead windows; activity spans at
        // most ~1.3 s of it (DFA paces itself by N-slot frames and
        // re-contends collided frames, so its active span stretches to
        // a few seconds). The rest must be skipped, not walked.
        let cap = if mac == MacKind::Dfa { 20_000 } else { 4_000 };
        prop_assert!(windows < cap, "idle tail was walked: {} windows", windows);
        for shards in [2usize, 4, 8] {
            let (got, w) = run_dynamic(seed, nodes, jitter, mac, &moves, shards, false);
            prop_assert_eq!(&got, &reference, "diverged at {} shards", shards);
            prop_assert_eq!(w, windows, "window count diverged at {} shards", shards);
        }
        let (got, w) = run_dynamic(seed, nodes, jitter, mac, &moves, 4, true);
        prop_assert_eq!(&got, &reference, "threaded dynamic run diverged");
        prop_assert_eq!(w, windows, "threaded window count diverged");
    }

    /// The worker-thread engine (ghost air replicas, interest
    /// routing, window barriers) must match the inline loop exactly.
    #[test]
    fn threaded_engine_matches_inline_loop(
        seed in 1u64..5_000,
        nodes in 6usize..24,
        jitter in 0u64..1_000,
        mac in mac_kind(),
        faulty in any::<bool>(),
    ) {
        let reference = run_one(seed, nodes, jitter, mac, faulty, 1, false);
        for shards in [2usize, 4] {
            let got = run_one(seed, nodes, jitter, mac, faulty, shards, true);
            prop_assert_eq!(&got, &reference, "threaded run diverged at {} shards", shards);
        }
    }
}
