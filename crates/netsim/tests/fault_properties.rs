//! Property tests for the fault-injection channel.
//!
//! Two statistical contracts from the issue, plus the byte-identity
//! contract that makes fault injection safe to ship:
//!
//! 1. the Gilbert–Elliott bad-state occupancy converges to the analytic
//!    stationary value `to_bad / (to_bad + to_good)` over long runs;
//! 2. the degenerate channel (good == bad) is *exactly* — not just in
//!    distribution — an i.i.d. Bernoulli erasure process;
//! 3. a simulation with `FaultModel::none()` is indistinguishable from
//!    one that never configured faults, for any seed.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retri_netsim::fault::{ChannelState, FaultModel, GilbertElliott};
use retri_netsim::prelude::*;

/// A sender that bursts frames at start; receivers count frames heard.
struct Burst {
    to_send: u32,
    heard: u32,
}

impl Protocol for Burst {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for _ in 0..self.to_send {
            ctx.send(FramePayload::from_bytes(vec![0x5A; 20]).unwrap())
                .unwrap();
        }
    }
    fn on_frame(&mut self, _ctx: &mut Context<'_>, _frame: &Frame) {
        self.heard += 1;
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _timer: Timer) {}
}

fn burst_sim(seed: u64, faults: Option<FaultModel>) -> Simulator<Burst> {
    let mut builder = SimBuilder::new(seed);
    if let Some(faults) = faults {
        builder = builder.faults(faults);
    }
    let mut sim = builder.build(|id| Burst {
        to_send: if id == NodeId(0) { 30 } else { 0 },
        heard: 0,
    });
    sim.add_node_at(Position::new(0.0, 0.0));
    sim.add_node_at(Position::new(10.0, 0.0));
    sim.add_node_at(Position::new(0.0, 10.0));
    sim.run_until(SimTime::from_secs(5));
    sim
}

proptest! {
    /// Long-run bad-state occupancy converges to the analytic
    /// stationary probability `to_bad / (to_bad + to_good)`.
    #[test]
    fn gilbert_elliott_occupancy_converges_to_stationary(
        seed in any::<u64>(),
        to_bad in 0.05f64..0.5,
        to_good in 0.05f64..0.5,
    ) {
        let ge = GilbertElliott::bursty(
            ChannelState::clean(),
            ChannelState { bit_error_rate: 0.0, frame_erasure: 1.0 },
            to_bad,
            to_good,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut in_bad = false;
        let steps = 200_000u64;
        let mut bad_steps = 0u64;
        for _ in 0..steps {
            ge.step(&mut in_bad, &mut rng);
            if in_bad {
                bad_steps += 1;
            }
        }
        let observed = bad_steps as f64 / steps as f64;
        let analytic = ge.stationary_bad();
        // With both transition probabilities >= 0.05 the chain mixes in
        // tens of steps; 200k steps put the sampling error well under
        // this tolerance.
        prop_assert!(
            (observed - analytic).abs() < 0.04,
            "occupancy {observed:.4} vs stationary {analytic:.4} \
             (to_bad={to_bad:.3}, to_good={to_good:.3})"
        );
    }

    /// Since erasures only happen in the bad state, the long-run
    /// erased-frame rate converges to `stationary_bad * p_erase`.
    #[test]
    fn gilbert_elliott_loss_rate_matches_stationary_product(
        seed in any::<u64>(),
        to_bad in 0.05f64..0.5,
        to_good in 0.05f64..0.5,
        p_erase in 0.3f64..1.0,
    ) {
        let ge = GilbertElliott::bursty(
            ChannelState::clean(),
            ChannelState { bit_error_rate: 0.0, frame_erasure: p_erase },
            to_bad,
            to_good,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut in_bad = false;
        let frames = 200_000u64;
        let mut erased = 0u64;
        for _ in 0..frames {
            if ge.judge_frame(&mut in_bad, &mut rng).erased {
                erased += 1;
            }
        }
        let observed = erased as f64 / frames as f64;
        let analytic = ge.stationary_bad() * p_erase;
        prop_assert!(
            (observed - analytic).abs() < 0.04,
            "loss rate {observed:.4} vs analytic {analytic:.4}"
        );
    }

    /// The degenerate channel is bit-for-bit a plain Bernoulli erasure
    /// stream: same RNG seed, same decisions, no extra draws.
    #[test]
    fn degenerate_channel_is_exactly_iid(
        seed in any::<u64>(),
        p in 0.01f64..0.99,
    ) {
        let ge = GilbertElliott::iid(ChannelState {
            bit_error_rate: 0.0,
            frame_erasure: p,
        });
        prop_assert!(ge.is_degenerate());
        let mut channel_rng = StdRng::seed_from_u64(seed);
        let mut bernoulli_rng = StdRng::seed_from_u64(seed);
        let mut in_bad = false;
        for frame in 0..5_000u32 {
            let erased = ge.judge_frame(&mut in_bad, &mut channel_rng).erased;
            let expected = bernoulli_rng.gen_range(0.0..1.0) < p;
            prop_assert_eq!(erased, expected, "diverged at frame {}", frame);
        }
    }

    /// `FaultModel::none()` leaves every observable of a run — stats,
    /// energy meters, frames heard — identical to a run that never
    /// configured faults, for any seed.
    #[test]
    fn none_model_is_byte_identical_for_any_seed(seed in any::<u64>()) {
        let base = burst_sim(seed, None);
        let with_none = burst_sim(seed, Some(FaultModel::none()));
        prop_assert_eq!(base.stats(), with_none.stats());
        for node in base.node_ids() {
            prop_assert_eq!(base.meter(node), with_none.meter(node));
            prop_assert_eq!(
                base.protocol(node).heard,
                with_none.protocol(node).heard
            );
        }
    }

    /// Fault-enabled runs are a pure function of the seed: identical
    /// seeds give identical stats, meters, and protocol observations.
    #[test]
    fn fault_runs_are_reproducible(seed in any::<u64>()) {
        let faults = FaultModel::none().with_channel(GilbertElliott::bursty(
            ChannelState { bit_error_rate: 0.001, frame_erasure: 0.0 },
            ChannelState { bit_error_rate: 0.01, frame_erasure: 0.3 },
            0.2,
            0.4,
        ));
        let a = burst_sim(seed, Some(faults.clone()));
        let b = burst_sim(seed, Some(faults));
        prop_assert_eq!(a.stats(), b.stats());
        for node in a.node_ids() {
            prop_assert_eq!(a.meter(node), b.meter(node));
            prop_assert_eq!(a.protocol(node).heard, b.protocol(node).heard);
        }
    }
}
