//! Address-free, multi-hop data dissemination in the style of directed
//! diffusion.
//!
//! The paper positions RETRI inside the SCADDS architecture, whose
//! flagship communication pattern is directed diffusion (Intanagonwiwat
//! et al., the paper’s reference \[9\]): sinks flood *interests*, gradients form
//! toward the sink, and matching data flows down the gradients. This
//! module implements a deliberately address-free variant in which every
//! identifier is a RETRI identifier:
//!
//! - an **interest code** is a random ephemeral identifier naming one
//!   sink's current interest epoch. Sinks re-flood with a *fresh* code
//!   every epoch, so a code collision between two sinks cannot persist;
//! - a **sample identifier** is a random ephemeral identifier naming one
//!   data sample for the purpose of flood-duplicate suppression — a
//!   textbook RETRI "transaction". A collision makes a relay wrongly
//!   suppress a distinct sample: a loss, tolerated and measured.
//!
//! No node address appears on the air. Gradients are not per-neighbor
//! state (which would need neighbor identities) but a scalar *height* —
//! each node's hop distance to the sink, learned from the interest
//! flood. Data descends the height field: a node forwards a sample iff
//! the transmitting relay was higher than itself. Ground-truth origin
//! ids ride *inside the payload*, exactly as the paper prescribes ("a
//! node's unique identifier can be sent as data"), and are used here
//! only to measure false suppressions.
//!
//! # Wire format (byte-aligned for clarity)
//!
//! ```text
//! INTEREST: kind=1 | code (2B) | height (1B)
//! DATA:     kind=2 | code (2B) | height (1B) | sample id (2B)
//!           | origin (4B, payload) | seq (4B, payload) | value (2B, payload)
//! ```

use std::collections::HashMap;

use retri::select::{IdSelector, UniformSelector};
use retri::{IdentifierSpace, TransactionId};
use retri_netsim::prelude::*;

const KIND_INTEREST: u8 = 1;
const KIND_DATA: u8 = 2;

const TIMER_EPOCH: u64 = 1;
const TIMER_REFLOOD: u64 = 2;
const TIMER_SAMPLE: u64 = 3;
const TIMER_FORWARD: u64 = 4;

/// Maximum random delay before a forwarded frame is handed to the MAC.
/// Jitter desynchronizes the rebroadcast storms of flooding protocols,
/// which otherwise collide at hidden terminals (two forwarders out of
/// mutual carrier-sense range).
const FORWARD_JITTER_MICROS: u64 = 40_000;

/// Static configuration of the diffusion protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiffusionConfig {
    /// Interest-code width in bits (1..=16).
    pub interest_bits: u8,
    /// Sample-identifier width in bits (1..=16).
    pub sample_bits: u8,
    /// How often the sink picks a fresh interest code.
    pub epoch: SimDuration,
    /// How often the current interest is re-flooded within an epoch
    /// (repairs losses and reaches newcomers).
    pub reflood: SimDuration,
    /// How often a source produces a sample.
    pub sample_period: SimDuration,
    /// How long a seen sample identifier suppresses duplicates, µs.
    pub dedup_ttl_micros: u64,
    /// How long a gradient (a heard interest code) stays alive without
    /// being re-heard, µs. Should cover two or three re-flood periods —
    /// long enough to ride out a lost re-flood, short enough that a
    /// superseded epoch's code dies quickly (sources keep spending
    /// energy on every live code until it expires).
    pub gradient_ttl_micros: u64,
}

impl Default for DiffusionConfig {
    /// 8-bit interest codes, 10-bit sample ids, 30 s epochs, 5 s
    /// re-floods, a sample every 2 s.
    fn default() -> Self {
        DiffusionConfig {
            interest_bits: 8,
            sample_bits: 10,
            epoch: SimDuration::from_secs(30),
            reflood: SimDuration::from_secs(5),
            sample_period: SimDuration::from_secs(2),
            dedup_ttl_micros: 10_000_000,
            gradient_ttl_micros: 12_000_000,
        }
    }
}

/// What a node does in the diffusion network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DiffusionRole {
    /// Floods interests and consumes matching samples.
    Sink,
    /// Produces samples for the current interest.
    Source,
    /// Forwards interests and samples.
    Relay,
}

/// Per-node counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiffusionStats {
    /// Interest floods originated (sinks only).
    pub interests_flooded: u64,
    /// Interest frames forwarded.
    pub interests_forwarded: u64,
    /// Samples originated (sources only).
    pub samples_produced: u64,
    /// Sample frames forwarded down the gradient.
    pub samples_forwarded: u64,
    /// Distinct samples delivered (sink only).
    pub samples_delivered: u64,
    /// Duplicate sample frames correctly suppressed.
    pub duplicates_suppressed: u64,
    /// Distinct samples wrongly suppressed because their ephemeral
    /// identifier collided with a different recent sample (the RETRI
    /// loss mode, measured via ground truth in the payload).
    pub false_suppressions: u64,
}

#[derive(Debug, Clone, Copy)]
struct SeenSample {
    origin: u32,
    seq: u32,
    last_seen: u64,
}

/// A decoded DATA frame (bundles the six wire fields).
#[derive(Debug, Clone, Copy)]
struct DataFrame {
    code: TransactionId,
    sender_height: u8,
    sample: TransactionId,
    origin: u32,
    seq: u32,
    value: u16,
}

#[derive(Debug, Clone, Copy)]
struct Gradient {
    height: u8,
    last_heard: u64,
    /// When this node last rebroadcast this code (rate-limits refresh
    /// forwarding to one per re-flood period).
    last_forwarded: u64,
}

/// One node of the diffusion network.
#[derive(Debug)]
pub struct DiffusionNode {
    role: DiffusionRole,
    config: DiffusionConfig,
    interest_space: IdentifierSpace,
    sample_space: IdentifierSpace,
    selector_interest: UniformSelector,
    selector_sample: UniformSelector,
    /// Ground-truth identity for payload-borne origin marking.
    origin: u32,
    /// This sink's own current code (sinks only).
    my_code: Option<TransactionId>,
    /// One gradient per live interest code: supports any number of
    /// concurrent sinks, each with its own ephemeral code.
    gradients: HashMap<TransactionId, Gradient>,
    next_seq: u32,
    /// Duplicate suppression, keyed per (interest code, sample id):
    /// the same sample identifier under two different codes is two
    /// distinct flood transactions.
    seen: HashMap<(TransactionId, TransactionId), SeenSample>,
    outbox: std::collections::VecDeque<FramePayload>,
    stats: DiffusionStats,
}

impl DiffusionNode {
    /// Creates a node. `origin` must be unique per node (use the
    /// simulator node index); it travels only inside payloads.
    ///
    /// # Panics
    ///
    /// Panics if either identifier width is outside `1..=16`.
    #[must_use]
    pub fn new(role: DiffusionRole, config: DiffusionConfig, origin: u32) -> Self {
        assert!(
            (1..=16).contains(&config.interest_bits),
            "interest width {} outside 1..=16",
            config.interest_bits
        );
        assert!(
            (1..=16).contains(&config.sample_bits),
            "sample width {} outside 1..=16",
            config.sample_bits
        );
        let interest_space = IdentifierSpace::new(config.interest_bits).expect("validated above");
        let sample_space = IdentifierSpace::new(config.sample_bits).expect("validated above");
        DiffusionNode {
            role,
            config,
            interest_space,
            sample_space,
            selector_interest: UniformSelector::new(interest_space),
            selector_sample: UniformSelector::new(sample_space),
            origin,
            my_code: None,
            gradients: HashMap::new(),
            next_seq: 0,
            seen: HashMap::new(),
            outbox: std::collections::VecDeque::new(),
            stats: DiffusionStats::default(),
        }
    }

    /// Queues a frame for transmission after a short random jitter,
    /// breaking the synchronized rebroadcast bursts that collide at
    /// hidden terminals.
    fn send_jittered(&mut self, ctx: &mut Context<'_>, payload: FramePayload) {
        use rand::Rng as _;
        self.outbox.push_back(payload);
        let jitter = ctx.rng().gen_range(1..=FORWARD_JITTER_MICROS);
        ctx.set_timer(SimDuration::from_micros(jitter), TIMER_FORWARD);
    }

    /// The node's role.
    #[must_use]
    pub fn role(&self) -> DiffusionRole {
        self.role
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> DiffusionStats {
        self.stats
    }

    /// Hop distance to the nearest sink over any live gradient (`None`
    /// until an interest has been heard). A sink reports `Some(0)`.
    #[must_use]
    pub fn height(&self) -> Option<u8> {
        if self.role == DiffusionRole::Sink {
            return self.my_code.map(|_| 0);
        }
        self.gradients.values().map(|g| g.height).min()
    }

    /// Hop distance to the sink flooding `code`, if that gradient is
    /// live at this node.
    #[must_use]
    pub fn height_for(&self, code: TransactionId) -> Option<u8> {
        if self.role == DiffusionRole::Sink && self.my_code == Some(code) {
            return Some(0);
        }
        self.gradients.get(&code).map(|g| g.height)
    }

    /// The interest code currently in effect at this node: a sink's own
    /// code, or the code of the lowest (nearest) live gradient.
    #[must_use]
    pub fn current_code(&self) -> Option<TransactionId> {
        if self.role == DiffusionRole::Sink {
            return self.my_code;
        }
        self.gradients
            .iter()
            .min_by_key(|(_, g)| g.height)
            .map(|(code, _)| *code)
    }

    /// All live interest codes known to this node.
    pub fn live_codes(&self) -> impl Iterator<Item = TransactionId> + '_ {
        self.gradients.keys().copied()
    }

    fn encode_interest(code: TransactionId, height: u8) -> FramePayload {
        let raw = code.value() as u16;
        FramePayload::from_bytes(vec![KIND_INTEREST, (raw >> 8) as u8, raw as u8, height])
            .expect("non-empty")
    }

    fn encode_data(
        code: TransactionId,
        height: u8,
        sample: TransactionId,
        origin: u32,
        seq: u32,
        value: u16,
    ) -> FramePayload {
        let code_raw = code.value() as u16;
        let sample_raw = sample.value() as u16;
        let mut bytes = vec![
            KIND_DATA,
            (code_raw >> 8) as u8,
            code_raw as u8,
            height,
            (sample_raw >> 8) as u8,
            sample_raw as u8,
        ];
        bytes.extend_from_slice(&origin.to_be_bytes());
        bytes.extend_from_slice(&seq.to_be_bytes());
        bytes.extend_from_slice(&value.to_be_bytes());
        FramePayload::from_bytes(bytes).expect("non-empty")
    }

    fn new_epoch(&mut self, ctx: &mut Context<'_>) {
        debug_assert_eq!(self.role, DiffusionRole::Sink);
        let code = self.selector_interest.select(ctx.rng());
        self.my_code = Some(code);
        // Old samples belong to the old epoch.
        self.seen.clear();
        self.flood_interest(ctx);
        ctx.set_timer(self.config.epoch, TIMER_EPOCH);
        ctx.set_timer(self.config.reflood, TIMER_REFLOOD);
    }

    fn flood_interest(&mut self, ctx: &mut Context<'_>) {
        if let Some(code) = self.my_code {
            let _ = ctx.send(Self::encode_interest(code, 0));
            self.stats.interests_flooded += 1;
        }
    }

    fn produce_sample(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now().as_micros();
        self.expire_gradients(now);
        // One reading, announced once per live interest (each sink gets
        // its own flood transaction under a fresh sample identifier).
        let codes: Vec<(TransactionId, u8)> = self
            .gradients
            .iter()
            .map(|(code, g)| (*code, g.height))
            .collect();
        if codes.is_empty() {
            return; // no interest heard yet
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let value = (seq % 1000) as u16;
        for (code, height) in codes {
            let sample = self.selector_sample.select(ctx.rng());
            // Remember our own sample so we do not re-forward our echo.
            self.remember(code, sample, self.origin, seq, ctx.now().as_micros());
            let _ = ctx.send(Self::encode_data(
                code,
                height,
                sample,
                self.origin,
                seq,
                value,
            ));
        }
        self.stats.samples_produced += 1;
    }

    fn remember(
        &mut self,
        code: TransactionId,
        sample: TransactionId,
        origin: u32,
        seq: u32,
        now: u64,
    ) {
        let ttl = self.config.dedup_ttl_micros;
        self.seen
            .retain(|_, entry| now.saturating_sub(entry.last_seen) <= ttl);
        self.seen.insert(
            (code, sample),
            SeenSample {
                origin,
                seq,
                last_seen: now,
            },
        );
    }

    fn expire_gradients(&mut self, now: u64) {
        let ttl = self.config.gradient_ttl_micros;
        self.gradients
            .retain(|_, g| now.saturating_sub(g.last_heard) <= ttl);
    }

    fn on_interest(&mut self, ctx: &mut Context<'_>, code: TransactionId, heard_height: u8) {
        if self.role == DiffusionRole::Sink {
            return; // sinks originate interests; they do not adopt them
        }
        let now = ctx.now().as_micros();
        self.expire_gradients(now);
        let my_new_height = heard_height.saturating_add(1);
        match self.gradients.get_mut(&code) {
            None => {
                self.gradients.insert(
                    code,
                    Gradient {
                        height: my_new_height,
                        last_heard: now,
                        last_forwarded: now,
                    },
                );
                let payload = Self::encode_interest(code, my_new_height);
                self.send_jittered(ctx, payload);
                self.stats.interests_forwarded += 1;
            }
            Some(gradient) => {
                gradient.last_heard = now;
                let refresh_due =
                    now.saturating_sub(gradient.last_forwarded) >= self.config.reflood.as_micros();
                if my_new_height < gradient.height {
                    gradient.height = my_new_height;
                    gradient.last_forwarded = now;
                    let payload = Self::encode_interest(code, my_new_height);
                    self.send_jittered(ctx, payload);
                    self.stats.interests_forwarded += 1;
                } else if heard_height > gradient.height.saturating_add(1) {
                    // Gradient repair: a neighbor believes the sink is
                    // much farther than it is through us — it must have
                    // missed our earlier advertisement (RF loss during
                    // the flood storm). Re-advertise so its next
                    // relaxation step can descend; without this, one
                    // lost frame pins an inflated height until the next
                    // epoch.
                    gradient.last_forwarded = now;
                    let height = gradient.height;
                    let payload = Self::encode_interest(code, height);
                    self.send_jittered(ctx, payload);
                    self.stats.interests_forwarded += 1;
                } else if heard_height < gradient.height && refresh_due {
                    // Keep-alive propagation: the sink's periodic
                    // re-flood must reach every hop or distant gradients
                    // expire. Forward at most once per re-flood period.
                    gradient.last_forwarded = now;
                    let height = gradient.height;
                    let payload = Self::encode_interest(code, height);
                    self.send_jittered(ctx, payload);
                    self.stats.interests_forwarded += 1;
                }
            }
        }
    }

    fn on_data(&mut self, ctx: &mut Context<'_>, data: DataFrame) {
        let DataFrame {
            code,
            sender_height,
            sample,
            origin,
            seq,
            value,
        } = data;
        let now = ctx.now().as_micros();
        self.expire_gradients(now);
        let my_height = if self.role == DiffusionRole::Sink {
            if self.my_code != Some(code) {
                return; // another sink's stream (or a stale epoch)
            }
            0
        } else {
            match self.gradients.get(&code) {
                Some(gradient) => gradient.height,
                None => return, // no gradient for this interest yet
            }
        };
        // Duplicate suppression by ephemeral sample identifier, scoped
        // to the interest code.
        let ttl = self.config.dedup_ttl_micros;
        self.seen
            .retain(|_, entry| now.saturating_sub(entry.last_seen) <= ttl);
        if let Some(entry) = self.seen.get_mut(&(code, sample)) {
            entry.last_seen = now;
            if entry.origin == origin && entry.seq == seq {
                self.stats.duplicates_suppressed += 1;
            } else {
                // A *different* sample under the same ephemeral id: the
                // RETRI collision loss, visible only through the
                // ground truth in the payload.
                self.stats.false_suppressions += 1;
            }
            return;
        }
        self.remember(code, sample, origin, seq, now);
        if self.role == DiffusionRole::Sink {
            self.stats.samples_delivered += 1;
            let _ = value;
            return;
        }
        // Descend the gradient: forward only if the sample came from
        // higher up (a peer at our height on another branch would also
        // carry it — forwarding on equal height would double every
        // frame, so strictly higher only).
        if sender_height > my_height {
            let payload = Self::encode_data(code, my_height, sample, origin, seq, value);
            self.send_jittered(ctx, payload);
            self.stats.samples_forwarded += 1;
        }
    }
}

impl Protocol for DiffusionNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        match self.role {
            DiffusionRole::Sink => self.new_epoch(ctx),
            DiffusionRole::Source => {
                ctx.set_timer(self.config.sample_period, TIMER_SAMPLE);
            }
            DiffusionRole::Relay => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut Context<'_>, frame: &Frame) {
        let bytes = frame.payload.bytes();
        if bytes.len() < 4 {
            return;
        }
        let code_raw = (u64::from(bytes[1]) << 8) | u64::from(bytes[2]);
        let Ok(code) = self
            .interest_space
            .id(code_raw & self.interest_space.mask())
        else {
            return;
        };
        match bytes[0] {
            KIND_INTEREST => self.on_interest(ctx, code, bytes[3]),
            KIND_DATA if bytes.len() >= 16 => {
                let sample_raw = (u64::from(bytes[4]) << 8) | u64::from(bytes[5]);
                let Ok(sample) = self.sample_space.id(sample_raw & self.sample_space.mask()) else {
                    return;
                };
                let origin = u32::from_be_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]);
                let seq = u32::from_be_bytes([bytes[10], bytes[11], bytes[12], bytes[13]]);
                let value = u16::from_be_bytes([bytes[14], bytes[15]]);
                self.on_data(
                    ctx,
                    DataFrame {
                        code,
                        sender_height: bytes[3],
                        sample,
                        origin,
                        seq,
                        value,
                    },
                );
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: Timer) {
        match timer.token {
            TIMER_EPOCH if self.role == DiffusionRole::Sink => self.new_epoch(ctx),
            TIMER_REFLOOD if self.role == DiffusionRole::Sink => {
                use rand::Rng as _;
                self.flood_interest(ctx);
                // Jitter keeps periodic floods from phase-locking with
                // periodic data at hidden-terminal relays.
                let jitter = ctx.rng().gen_range(0..=self.config.reflood.as_micros() / 4);
                ctx.set_timer(
                    self.config.reflood + SimDuration::from_micros(jitter),
                    TIMER_REFLOOD,
                );
            }
            TIMER_SAMPLE if self.role == DiffusionRole::Source => {
                use rand::Rng as _;
                self.produce_sample(ctx);
                let jitter = ctx
                    .rng()
                    .gen_range(0..=self.config.sample_period.as_micros() / 4);
                ctx.set_timer(
                    self.config.sample_period + SimDuration::from_micros(jitter),
                    TIMER_SAMPLE,
                );
            }
            TIMER_FORWARD => {
                if let Some(payload) = self.outbox.pop_front() {
                    let _ = ctx.send(payload);
                }
            }
            _ => {}
        }
    }
}

/// Builds a line network `sink — relay … relay — source` with the given
/// number of hops and runs it; returns the simulator for inspection.
/// Node 0 is the sink; the last node is the source.
#[must_use]
pub fn run_line(
    hops: usize,
    config: DiffusionConfig,
    duration: SimDuration,
    seed: u64,
) -> Simulator<DiffusionNode> {
    assert!(hops >= 1, "need at least one hop");
    let nodes = hops + 1;
    let mut sim = SimBuilder::new(seed)
        .radio(RadioConfig::radiometrix_rpc())
        .mac(MacConfig::csma())
        .range(60.0)
        .build(move |id: NodeId| {
            let role = if id.index() == 0 {
                DiffusionRole::Sink
            } else if id.index() == nodes - 1 {
                DiffusionRole::Source
            } else {
                DiffusionRole::Relay
            };
            DiffusionNode::new(role, config, id.0)
        });
    for i in 0..nodes {
        // 50 m spacing with 60 m range: strictly nearest-neighbor links.
        sim.add_node_at(Position::new(i as f64 * 50.0, 0.0));
    }
    sim.run_until(SimTime::ZERO + duration);
    sim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interest_flood_builds_heights_along_the_line() {
        let sim = run_line(4, DiffusionConfig::default(), SimDuration::from_secs(10), 1);
        for i in 0..=4u32 {
            assert_eq!(
                sim.protocol(NodeId(i)).height(),
                Some(i as u8),
                "node {i} height"
            );
        }
        // Everyone converged on the sink's code.
        let code = sim.protocol(NodeId(0)).current_code();
        for i in 1..=4u32 {
            assert_eq!(sim.protocol(NodeId(i)).current_code(), code);
        }
    }

    #[test]
    fn samples_flow_down_the_gradient_to_the_sink() {
        let sim = run_line(4, DiffusionConfig::default(), SimDuration::from_secs(40), 2);
        let source = sim.protocol(NodeId(4)).stats();
        let sink = sim.protocol(NodeId(0)).stats();
        assert!(source.samples_produced >= 10, "{source:?}");
        // Nearly all samples arrive (lossless radio, CSMA line).
        assert!(
            sink.samples_delivered >= source.samples_produced - 2,
            "sink {sink:?} vs source {source:?}"
        );
        // Relays forwarded them.
        for i in 1..=3u32 {
            assert!(sim.protocol(NodeId(i)).stats().samples_forwarded > 0);
        }
    }

    #[test]
    fn duplicate_frames_are_suppressed_not_multiplied() {
        // In a line, a relay's rebroadcast is heard by the node it came
        // from; suppression must stop infinite echo.
        let sim = run_line(3, DiffusionConfig::default(), SimDuration::from_secs(30), 3);
        let source = sim.protocol(NodeId(3)).stats();
        let sink = sim.protocol(NodeId(0)).stats();
        assert!(sink.samples_delivered <= source.samples_produced);
        let total_suppressed: u64 = sim
            .node_ids()
            .map(|id| sim.protocol(id).stats().duplicates_suppressed)
            .sum();
        assert!(total_suppressed > 0, "echoes must be suppressed");
    }

    #[test]
    fn epochs_refresh_the_interest_code() {
        let config = DiffusionConfig {
            epoch: SimDuration::from_secs(5),
            ..DiffusionConfig::default()
        };
        let mut sim = run_line(2, config, SimDuration::from_secs(4), 4);
        let first_code = sim.protocol(NodeId(0)).current_code();
        // Run past the next epoch *and* one re-flood, so the relay has
        // seen the fresh code even if the first flood frame was lost to
        // a hidden-terminal collision with the source's data.
        sim.run_until(SimTime::from_secs(17));
        let later_code = sim.protocol(NodeId(0)).current_code();
        // With 8-bit codes the chance of re-drawing the same one across
        // two epochs is 2/256 over this window; the fixed seed makes
        // the assertion deterministic.
        assert_ne!(first_code, later_code, "epoch must pick a fresh code");
        // Relays learned the new code (the old gradient may linger until
        // its ttl — multi-sink support keeps every live code).
        let relay_codes: Vec<_> = sim.protocol(NodeId(1)).live_codes().collect();
        assert!(relay_codes.contains(&later_code.unwrap()));
    }

    #[test]
    fn tiny_sample_space_causes_false_suppressions() {
        // 2-bit sample ids with many samples in flight: collisions must
        // appear, and they are *measured*, not fatal.
        let config = DiffusionConfig {
            sample_bits: 2,
            sample_period: SimDuration::from_millis(300),
            ..DiffusionConfig::default()
        };
        let mut false_suppressions = 0;
        for seed in 0..3 {
            let sim = run_line(3, config, SimDuration::from_secs(60), 50 + seed);
            false_suppressions += sim
                .node_ids()
                .map(|id| sim.protocol(id).stats().false_suppressions)
                .sum::<u64>();
        }
        assert!(
            false_suppressions > 0,
            "4 sample ids at this rate must collide"
        );
    }

    #[test]
    fn sane_sample_space_rarely_false_suppresses() {
        let sim = run_line(3, DiffusionConfig::default(), SimDuration::from_secs(60), 6);
        let false_suppressions: u64 = sim
            .node_ids()
            .map(|id| sim.protocol(id).stats().false_suppressions)
            .sum();
        let delivered = sim.protocol(NodeId(0)).stats().samples_delivered;
        assert!(delivered > 15, "delivered only {delivered}");
        assert!(
            false_suppressions <= delivered / 10,
            "10-bit sample ids should almost never collide: {false_suppressions}"
        );
    }

    #[test]
    fn two_sinks_receive_independently() {
        // Multi-sink: sinks at both ends of a line, one source in the
        // middle. Each sink floods its own ephemeral code; the source
        // answers both; relays keep one gradient per code.
        let config = DiffusionConfig::default();
        let mut sim = SimBuilder::new(33)
            .radio(RadioConfig::radiometrix_rpc())
            .mac(MacConfig::csma())
            .range(60.0)
            .build(move |id: NodeId| {
                let role = match id.index() {
                    0 | 4 => DiffusionRole::Sink,
                    2 => DiffusionRole::Source,
                    _ => DiffusionRole::Relay,
                };
                DiffusionNode::new(role, config, id.0)
            });
        for i in 0..5 {
            sim.add_node_at(Position::new(i as f64 * 50.0, 0.0));
        }
        sim.run_until(SimTime::from_secs(40));
        let left = sim.protocol(NodeId(0));
        let right = sim.protocol(NodeId(4));
        // Distinct ephemeral codes (8-bit space, fixed seed).
        assert_ne!(left.current_code(), right.current_code());
        // Both sinks receive a healthy share of the source's readings.
        let produced = sim.protocol(NodeId(2)).stats().samples_produced;
        assert!(produced >= 15, "{produced}");
        for sink in [NodeId(0), NodeId(4)] {
            let delivered = sim.protocol(sink).stats().samples_delivered;
            assert!(
                delivered as f64 >= produced as f64 * 0.6,
                "sink {sink} got {delivered}/{produced}"
            );
        }
        // The source is serving two live gradients.
        assert!(sim.protocol(NodeId(2)).live_codes().count() >= 2);
    }

    #[test]
    fn relay_without_interest_stays_silent() {
        // A node that never heard an interest has no gradient and must
        // not forward data.
        let config = DiffusionConfig::default();
        let mut sim = SimBuilder::new(7)
            .range(60.0)
            .build(move |id: NodeId| DiffusionNode::new(DiffusionRole::Relay, config, id.0));
        sim.add_node_at(Position::new(0.0, 0.0));
        sim.run_until(SimTime::from_secs(5));
        let stats = sim.protocol(NodeId(0)).stats();
        assert_eq!(stats.interests_forwarded, 0);
        assert_eq!(stats.samples_forwarded, 0);
        assert_eq!(sim.protocol(NodeId(0)).height(), None);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = run_line(3, DiffusionConfig::default(), SimDuration::from_secs(20), 9);
        let b = run_line(3, DiffusionConfig::default(), SimDuration::from_secs(20), 9);
        for id in a.node_ids() {
            assert_eq!(a.protocol(id).stats(), b.protocol(id).stats());
        }
    }

    #[test]
    #[should_panic(expected = "outside 1..=16")]
    fn rejects_wide_interest_codes() {
        let _ = DiffusionNode::new(
            DiffusionRole::Relay,
            DiffusionConfig {
                interest_bits: 17,
                ..DiffusionConfig::default()
            },
            0,
        );
    }
}
