//! Attribute-based name compression with RETRI codes.
//!
//! The paper's second "other context" (Section 6): attribute/value
//! lists "might be quite large, but the same attribute/value pairs
//! might be used frequently by a node. This problem has traditionally
//! been solved by creation of a 'codebook' mapping small identifiers to
//! long lists of attributes. Nodes using codebooks can choose RETRI
//! identifiers instead of traditional alternatives."
//!
//! A [`CompressionNode`] in sender mode transmits a recurring attribute
//! list: the first time (and whenever the binding is retired) it sends
//! a **definition** — code plus the full list — and thereafter just the
//! short **coded** message. Receivers learn definitions into a
//! [`retri::codebook::ReceiverCodebook`]; a code collision between two
//! senders surfaces as a codebook conflict and heals when either sender
//! rebinds.

use rand::Rng;
use retri::codebook::{LearnOutcome, ReceiverCodebook, SenderCodebook};
use retri::{IdentifierSpace, TransactionId};
use retri_netsim::prelude::*;

const MSG_DEFINE: u8 = 1;
const MSG_CODED: u8 = 2;

const TIMER_SEND: u64 = 1;
const TIMER_REBIND: u64 = 2;

/// Counters kept by a compression node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CompressionStats {
    /// Definition messages sent (code + full attribute list).
    pub definitions_sent: u64,
    /// Coded (compressed) messages sent.
    pub coded_sent: u64,
    /// Bits actually offered to the radio.
    pub bits_sent: u64,
    /// Bits that would have been offered had every message carried the
    /// full attribute list (the uncompressed counterfactual).
    pub uncompressed_bits: u64,
    /// Coded messages received and successfully resolved.
    pub resolved: u64,
    /// Coded messages received whose code had no live binding.
    pub unresolved: u64,
    /// Codebook conflicts observed (two senders defined the same code).
    pub conflicts: u64,
}

impl CompressionStats {
    /// Fraction of bits saved versus sending the full list every time.
    #[must_use]
    pub fn savings(&self) -> f64 {
        if self.uncompressed_bits == 0 {
            0.0
        } else {
            1.0 - self.bits_sent as f64 / self.uncompressed_bits as f64
        }
    }
}

/// A node that periodically transmits a recurring attribute list using
/// codebook compression, and decodes everyone else's.
#[derive(Debug)]
pub struct CompressionNode {
    space: IdentifierSpace,
    sender_book: SenderCodebook<Vec<u8>>,
    receiver_book: ReceiverCodebook<Vec<u8>>,
    /// This node's recurring attribute list (empty = receive-only).
    attributes: Vec<u8>,
    period: SimDuration,
    /// Retire the binding (forcing a fresh ephemeral code) every this
    /// often. `None` keeps one binding forever.
    rebind_every: Option<SimDuration>,
    stats: CompressionStats,
}

impl CompressionNode {
    /// Creates a node announcing `attributes` every `period`.
    #[must_use]
    pub fn new(
        space: IdentifierSpace,
        attributes: Vec<u8>,
        period: SimDuration,
        rebind_every: Option<SimDuration>,
    ) -> Self {
        CompressionNode {
            space,
            sender_book: SenderCodebook::new(space, 16),
            receiver_book: ReceiverCodebook::new(60_000_000),
            attributes,
            period,
            rebind_every,
            stats: CompressionStats::default(),
        }
    }

    /// A receive-only node.
    #[must_use]
    pub fn listener(space: IdentifierSpace) -> Self {
        CompressionNode::new(space, Vec::new(), SimDuration::from_secs(1), None)
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> CompressionStats {
        self.stats
    }

    fn encode_define(&self, code: TransactionId) -> FramePayload {
        let raw = code.value() as u16;
        let mut bytes = vec![MSG_DEFINE, (raw >> 8) as u8, raw as u8];
        bytes.extend_from_slice(&self.attributes);
        FramePayload::from_bytes(bytes).expect("non-empty")
    }

    fn encode_coded(code: TransactionId) -> FramePayload {
        let raw = code.value() as u16;
        FramePayload::from_bytes(vec![MSG_CODED, (raw >> 8) as u8, raw as u8]).expect("non-empty")
    }

    /// Sends either a definition or a coded message for this node's
    /// attribute list.
    ///
    /// # Panics
    ///
    /// Panics if the attribute list does not fit one radio frame: a
    /// definition must be transmittable in a single frame (compose with
    /// AFF fragmentation for longer lists).
    fn announce(&mut self, ctx: &mut Context<'_>) {
        if self.attributes.is_empty() {
            return;
        }
        assert!(
            3 + self.attributes.len() <= ctx.max_frame_bytes(),
            "attribute list of {} bytes does not fit a {}-byte frame; \
             compose with AFF fragmentation for longer lists",
            self.attributes.len(),
            ctx.max_frame_bytes()
        );
        let full_bits = (3 + self.attributes.len()) as u64 * 8;
        let already_bound = self.sender_book.code_of(&self.attributes).is_some();
        let code = self.sender_book.encode(self.attributes.clone(), ctx.rng());
        let payload = if already_bound {
            self.stats.coded_sent += 1;
            Self::encode_coded(code)
        } else {
            self.stats.definitions_sent += 1;
            self.encode_define(code)
        };
        self.stats.bits_sent += u64::from(payload.bits());
        self.stats.uncompressed_bits += full_bits;
        ctx.send(payload).expect("size checked above");
        let jitter = ctx.rng().gen_range(0..=self.period.as_micros() / 8);
        ctx.set_timer(self.period + SimDuration::from_micros(jitter), TIMER_SEND);
    }
}

impl Protocol for CompressionNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if !self.attributes.is_empty() {
            self.announce(ctx);
            if let Some(rebind) = self.rebind_every {
                ctx.set_timer(rebind, TIMER_REBIND);
            }
        }
    }

    fn on_frame(&mut self, ctx: &mut Context<'_>, frame: &Frame) {
        let bytes = frame.payload.bytes();
        if bytes.len() < 3 {
            return;
        }
        let raw = (u64::from(bytes[1]) << 8) | u64::from(bytes[2]);
        let Ok(code) = self.space.id(raw & self.space.mask()) else {
            return;
        };
        let now = ctx.now().as_micros();
        match bytes[0] {
            MSG_DEFINE => {
                let attrs = bytes[3..].to_vec();
                // Avoid codes other senders define (listening).
                self.sender_book.observe(code);
                if self.receiver_book.learn(code, attrs, now) == LearnOutcome::Conflict {
                    self.stats.conflicts += 1;
                }
            }
            MSG_CODED => {
                if self.receiver_book.resolve(code, now).is_some() {
                    self.stats.resolved += 1;
                } else {
                    self.stats.unresolved += 1;
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: Timer) {
        match timer.token {
            TIMER_SEND => self.announce(ctx),
            TIMER_REBIND => {
                // Ephemerality: retire the binding so the next send
                // defines a fresh code. Conflicts cannot outlive this.
                self.sender_book.retire(&self.attributes.clone());
                if let Some(rebind) = self.rebind_every {
                    ctx.set_timer(rebind, TIMER_REBIND);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(
        senders: usize,
        id_bits: u8,
        seconds: u64,
        seed: u64,
        rebind: Option<SimDuration>,
    ) -> Simulator<CompressionNode> {
        let space = IdentifierSpace::new(id_bits).unwrap();
        let rebind_every = rebind;
        let mut sim = SimBuilder::new(seed)
            .radio(RadioConfig::radiometrix_rpc())
            .range(100.0)
            .build(move |id: NodeId| {
                if id.index() < senders {
                    // A realistic recurring attribute list, ~18 bytes.
                    let attrs = format!("type=temp node-class={}", id.index()).into_bytes();
                    CompressionNode::new(space, attrs, SimDuration::from_millis(500), rebind_every)
                } else {
                    CompressionNode::listener(space)
                }
            });
        let topo = Topology::full_mesh(senders + 1, 100.0);
        for id in topo.node_ids() {
            sim.add_node_at(topo.position(id));
        }
        sim.run_until(SimTime::from_secs(seconds));
        sim
    }

    #[test]
    fn compression_saves_most_bits() {
        let sim = run(3, 12, 30, 1, None);
        for id in sim.node_ids().take(3) {
            let stats = sim.protocol(id).stats();
            assert_eq!(stats.definitions_sent, 1, "one definition per binding");
            assert!(stats.coded_sent > 10);
            assert!(
                stats.savings() > 0.5,
                "coded messages should save well over half: {:?}",
                stats.savings()
            );
        }
    }

    #[test]
    fn listener_resolves_coded_messages() {
        let sim = run(3, 12, 30, 2, None);
        let listener = sim.protocol(NodeId(3)).stats();
        assert!(listener.resolved > 10);
        assert_eq!(listener.conflicts, 0, "12-bit codes must not conflict here");
    }

    #[test]
    fn tiny_code_space_conflicts_and_heals() {
        // 2-bit codes among 6 senders: conflicts are inevitable. With
        // periodic rebinding the system keeps functioning (most coded
        // messages still resolve).
        let mut conflicts = 0;
        let mut resolved = 0;
        for seed in 0..3 {
            let sim = run(6, 2, 40, 50 + seed, Some(SimDuration::from_secs(5)));
            let listener = sim.protocol(NodeId(6)).stats();
            conflicts += listener.conflicts;
            resolved += listener.resolved;
        }
        assert!(conflicts > 0, "4 codes among 6 senders must conflict");
        assert!(
            resolved > 0,
            "the system must keep working despite conflicts"
        );
    }

    #[test]
    fn rebinding_causes_fresh_definitions() {
        let sim = run(2, 12, 30, 3, Some(SimDuration::from_secs(5)));
        let stats = sim.protocol(NodeId(0)).stats();
        assert!(
            stats.definitions_sent >= 4,
            "rebinding every 5 s over 30 s needs several definitions: {stats:?}"
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let a = run(3, 8, 20, 9, None);
        let b = run(3, 8, 20, 9, None);
        for id in a.node_ids() {
            assert_eq!(a.protocol(id).stats(), b.protocol(id).stats());
        }
    }
}
