//! RETRI in other contexts (paper Section 6).
//!
//! Address-free fragmentation is one use of random ephemeral
//! identifiers; Section 6 sketches two more, both implemented here over
//! the same simulator:
//!
//! - [`reinforcement`] — **interest reinforcement**: sensors tag their
//!   periodic readings with an ephemeral stream identifier; sinks send
//!   feedback of the form *"whoever just sent data with identifier 4,
//!   send more of that"* — no addresses involved. An identifier
//!   collision occasionally reinforces the wrong sensor; the ephemeral
//!   re-pick bounds the damage to one epoch.
//! - [`compression`] — **attribute-based name compression**: long,
//!   recurring attribute/value lists are bound to short random codes
//!   via a codebook. Collisions surface as codebook conflicts and are
//!   healed by rebinding, instead of being prevented by an expensive
//!   conflict-free allocation protocol.
//! - [`diffusion`] — **address-free directed diffusion**: multi-hop
//!   data dissemination in the SCADDS style the paper assumes as its
//!   surrounding architecture, with RETRI identifiers naming interests
//!   and samples and a scalar gradient (hop height) replacing
//!   per-neighbor state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compression;
pub mod diffusion;
pub mod reinforcement;

pub use compression::{CompressionNode, CompressionStats};
pub use diffusion::{DiffusionConfig, DiffusionNode, DiffusionRole, DiffusionStats};
pub use reinforcement::{ReinforcementNode, SensorStats, SinkStats};
