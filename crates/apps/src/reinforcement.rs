//! Interest reinforcement with ephemeral stream identifiers.
//!
//! The paper's first "other context" (Section 6): *"When a node
//! transmits a sensor reading, its neighbors periodically send feedback
//! to the transmitter indicating their level of interest. ... RETRI can
//! serve this purpose equally well: 'Whoever just sent data with
//! Identifier 4, send more of that.'"*
//!
//! Sensors broadcast readings tagged with an ephemeral identifier that
//! they re-pick each *epoch*. A sink reinforces identifiers whose
//! readings it finds interesting (here: value above a threshold).
//! Sensors that hear a reinforcement for their *current* identifier
//! raise their reporting rate; others decay back to the base rate.
//!
//! If two sensors pick the same identifier in the same epoch, a
//! reinforcement meant for one also accelerates the other — a
//! *misdirected reinforcement*. Because identifiers are ephemeral, the
//! mistake lasts at most an epoch; the run statistics expose how often
//! it happens so the experiment can confirm the "small marginal effect"
//! claim.

use rand::Rng;
use retri::select::{IdSelector, UniformSelector};
use retri::{IdentifierSpace, TransactionId};
use retri_netsim::prelude::*;

const MSG_READING: u8 = 1;
const MSG_REINFORCE: u8 = 2;

const TIMER_REPORT: u64 = 1;
const TIMER_EPOCH: u64 = 2;

/// Counters kept by a sensor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SensorStats {
    /// Readings broadcast.
    pub readings_sent: u64,
    /// Reinforcements heard for this sensor's current identifier.
    pub reinforcements_matched: u64,
    /// Of those, reinforcements heard while this sensor was NOT sending
    /// interesting data — i.e. received only because of an identifier
    /// collision with an interesting sensor.
    pub misdirected: u64,
    /// Epochs begun (each with a fresh identifier).
    pub epochs: u64,
}

/// Counters kept by a sink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SinkStats {
    /// Readings heard.
    pub readings_heard: u64,
    /// Of those, interesting ones.
    pub interesting_heard: u64,
    /// Reinforcements sent.
    pub reinforcements_sent: u64,
}

/// A sensor that reports a (fixed, per-node) value each period under an
/// ephemeral per-epoch identifier.
#[derive(Debug)]
pub struct Sensor {
    space: IdentifierSpace,
    selector: UniformSelector,
    current_id: Option<TransactionId>,
    /// The value this sensor reports; "interesting" if above the sink
    /// threshold.
    pub value: u16,
    base_period: SimDuration,
    boosted_period: SimDuration,
    epoch: SimDuration,
    boosted: bool,
    stats: SensorStats,
}

/// A sink that reinforces identifiers carrying interesting readings.
#[derive(Debug)]
pub struct Sink {
    space: IdentifierSpace,
    threshold: u16,
    stats: SinkStats,
}

/// Either role, for mixed networks.
#[derive(Debug)]
pub enum ReinforcementNode {
    /// A reporting sensor.
    Sensor(Sensor),
    /// The interested sink.
    Sink(Sink),
}

impl ReinforcementNode {
    /// Creates a sensor node.
    #[must_use]
    pub fn sensor(
        space: IdentifierSpace,
        value: u16,
        base_period: SimDuration,
        epoch: SimDuration,
    ) -> Self {
        ReinforcementNode::Sensor(Sensor {
            space,
            selector: UniformSelector::new(space),
            current_id: None,
            value,
            base_period,
            boosted_period: SimDuration::from_micros((base_period.as_micros() / 4).max(1)),
            epoch,
            boosted: false,
            stats: SensorStats::default(),
        })
    }

    /// Creates a sink node reinforcing readings above `threshold`.
    #[must_use]
    pub fn sink(space: IdentifierSpace, threshold: u16) -> Self {
        ReinforcementNode::Sink(Sink {
            space,
            threshold,
            stats: SinkStats::default(),
        })
    }

    /// Sensor statistics, if this is a sensor.
    #[must_use]
    pub fn sensor_stats(&self) -> Option<SensorStats> {
        match self {
            ReinforcementNode::Sensor(s) => Some(s.stats),
            ReinforcementNode::Sink(_) => None,
        }
    }

    /// Sink statistics, if this is the sink.
    #[must_use]
    pub fn sink_stats(&self) -> Option<SinkStats> {
        match self {
            ReinforcementNode::Sink(s) => Some(s.stats),
            ReinforcementNode::Sensor(_) => None,
        }
    }

    /// Whether a sensor is currently boosted (its last reinforcement has
    /// not yet expired with the epoch).
    #[must_use]
    pub fn is_boosted(&self) -> bool {
        matches!(self, ReinforcementNode::Sensor(s) if s.boosted)
    }
}

/// Wire: kind (8) + identifier (H, bit-packed into 2 bytes here for
/// simplicity — the efficiency argument is made by the AFF experiments;
/// this app focuses on semantics) + value (16).
fn encode(kind: u8, id: TransactionId, value: u16) -> FramePayload {
    let raw = id.value() as u16;
    FramePayload::from_bytes(vec![
        kind,
        (raw >> 8) as u8,
        raw as u8,
        (value >> 8) as u8,
        value as u8,
    ])
    .expect("non-empty")
}

fn decode(space: IdentifierSpace, frame: &Frame) -> Option<(u8, TransactionId, u16)> {
    let bytes = frame.payload.bytes();
    if bytes.len() < 5 {
        return None;
    }
    let raw = (u64::from(bytes[1]) << 8) | u64::from(bytes[2]);
    let id = space.id(raw & space.mask()).ok()?;
    let value = (u16::from(bytes[3]) << 8) | u16::from(bytes[4]);
    Some((bytes[0], id, value))
}

impl Sensor {
    fn new_epoch(&mut self, ctx: &mut Context<'_>) {
        self.current_id = Some(self.selector.select(ctx.rng()));
        self.boosted = false;
        self.stats.epochs += 1;
        ctx.set_timer(self.epoch, TIMER_EPOCH);
    }

    fn report(&mut self, ctx: &mut Context<'_>) {
        if let Some(id) = self.current_id {
            let _ = ctx.send(encode(MSG_READING, id, self.value));
            self.stats.readings_sent += 1;
        }
        let period = if self.boosted {
            self.boosted_period
        } else {
            self.base_period
        };
        // Jitter desynchronizes sensors that booted together.
        let jitter = ctx.rng().gen_range(0..=period.as_micros() / 8);
        ctx.set_timer(period + SimDuration::from_micros(jitter), TIMER_REPORT);
    }
}

impl Protocol for ReinforcementNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        match self {
            ReinforcementNode::Sensor(sensor) => {
                sensor.new_epoch(ctx);
                sensor.report(ctx);
            }
            ReinforcementNode::Sink(_) => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut Context<'_>, frame: &Frame) {
        match self {
            ReinforcementNode::Sensor(sensor) => {
                let Some((kind, id, _value)) = decode(sensor.space, frame) else {
                    return;
                };
                if kind == MSG_REINFORCE && sensor.current_id == Some(id) {
                    sensor.stats.reinforcements_matched += 1;
                    sensor.boosted = true;
                    // The paper's collision effect: this sensor was
                    // reinforced although its own data is boring.
                    if !interesting(sensor.value) {
                        sensor.stats.misdirected += 1;
                    }
                }
            }
            ReinforcementNode::Sink(sink) => {
                let Some((kind, id, value)) = decode(sink.space, frame) else {
                    return;
                };
                if kind == MSG_READING {
                    sink.stats.readings_heard += 1;
                    if value >= sink.threshold {
                        sink.stats.interesting_heard += 1;
                        let _ = ctx.send(encode(MSG_REINFORCE, id, 0));
                        sink.stats.reinforcements_sent += 1;
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: Timer) {
        if let ReinforcementNode::Sensor(sensor) = self {
            match timer.token {
                TIMER_REPORT => sensor.report(ctx),
                TIMER_EPOCH => sensor.new_epoch(ctx),
                _ => {}
            }
        }
    }
}

/// The fixed "interesting" predicate shared by sinks (threshold 1000)
/// and the misdirection accounting.
fn interesting(value: u16) -> bool {
    value >= 1000
}

/// The sink threshold matching the fixed "interesting" predicate.
pub const INTERESTING_THRESHOLD: u16 = 1000;

#[cfg(test)]
mod tests {
    use super::*;

    /// n sensors (half interesting) + 1 sink, full mesh.
    fn run(sensors: usize, id_bits: u8, seconds: u64, seed: u64) -> Simulator<ReinforcementNode> {
        let space = IdentifierSpace::new(id_bits).unwrap();
        let mut sim = SimBuilder::new(seed)
            .radio(RadioConfig::radiometrix_rpc())
            .range(100.0)
            .build(move |id: NodeId| {
                if id.index() < sensors {
                    // Even-index sensors are interesting, odd boring.
                    let value = if id.index().is_multiple_of(2) {
                        2000
                    } else {
                        10
                    };
                    ReinforcementNode::sensor(
                        space,
                        value,
                        SimDuration::from_millis(500),
                        SimDuration::from_secs(5),
                    )
                } else {
                    ReinforcementNode::sink(space, INTERESTING_THRESHOLD)
                }
            });
        let topo = Topology::full_mesh(sensors + 1, 100.0);
        for id in topo.node_ids() {
            sim.add_node_at(topo.position(id));
        }
        sim.run_until(SimTime::from_secs(seconds));
        sim
    }

    #[test]
    fn interesting_sensors_get_reinforced() {
        let sim = run(4, 16, 30, 1);
        let interesting = sim.protocol(NodeId(0)).sensor_stats().unwrap();
        let boring = sim.protocol(NodeId(1)).sensor_stats().unwrap();
        assert!(interesting.reinforcements_matched > 0);
        // With 16-bit identifiers collisions are essentially impossible,
        // so the boring sensor hears nothing for its ids.
        assert_eq!(boring.reinforcements_matched, 0);
        assert_eq!(boring.misdirected, 0);
    }

    #[test]
    fn boost_accelerates_reporting() {
        let sim = run(2, 16, 30, 2);
        let interesting = sim.protocol(NodeId(0)).sensor_stats().unwrap();
        let boring = sim.protocol(NodeId(1)).sensor_stats().unwrap();
        assert!(
            interesting.readings_sent > boring.readings_sent,
            "reinforced sensor must report faster: {interesting:?} vs {boring:?}"
        );
    }

    #[test]
    fn tiny_id_space_misdirects_occasionally() {
        // 2-bit identifiers among 8 sensors: collisions are common, so
        // some boring sensors get reinforced by mistake.
        let mut misdirected = 0;
        for seed in 0..5 {
            let sim = run(8, 2, 40, 100 + seed);
            for id in sim.node_ids().take(8) {
                misdirected += sim.protocol(id).sensor_stats().unwrap().misdirected;
            }
        }
        assert!(
            misdirected > 0,
            "with 4 identifiers and 8 sensors, misdirection must occur"
        );
    }

    #[test]
    fn misdirection_is_bounded_by_epochs() {
        // The ephemeral re-pick heals mistakes: a boring sensor is never
        // misdirected more often than once per report within an epoch,
        // and across epochs the rate stays a small fraction at sane
        // widths.
        let sim = run(6, 8, 60, 7);
        for id in sim.node_ids().take(6) {
            let stats = sim.protocol(id).sensor_stats().unwrap();
            assert!(stats.epochs >= 10);
            if stats.misdirected > 0 {
                // Misdirected reinforcements only make sense for boring
                // sensors that collided — and stay rare.
                assert!(stats.misdirected < stats.readings_sent);
            }
        }
    }

    #[test]
    fn sink_counts_are_consistent() {
        let sim = run(4, 16, 20, 3);
        let sink = sim.protocol(NodeId(4)).sink_stats().unwrap();
        assert!(sink.readings_heard >= sink.interesting_heard);
        assert_eq!(sink.reinforcements_sent, sink.interesting_heard);
    }
}
