//! Closed-form anchors for the paper's Equations 2–4.
//!
//! The property tests in `properties.rs` check the model's *shape*
//! (monotonicity, bounds); these tests pin it to values a reader can
//! verify by hand against the paper: exact Eq. 2 fractions, the Eq. 3
//! factorization, the Eq. 4 closed form recomputed independently, the
//! complement identity `p_collision + p_success == 1`, and the
//! Section 4.2 headline result (9-bit optimum at D = 16, T = 16).

use retri_model::{
    aff_efficiency, optimal_id_bits, p_collision, p_success, static_efficiency, DataBits, Density,
    IdBits,
};

fn data(bits: u32) -> DataBits {
    DataBits::new(bits).expect("positive data size")
}

fn id(bits: u8) -> IdBits {
    IdBits::new(bits).expect("valid width")
}

fn density(t: u64) -> Density {
    Density::new(t).expect("positive density")
}

/// Eq. 2: `E_static = D / (D + H)` at hand-checkable points.
#[test]
fn eq2_static_efficiency_anchors() {
    // The paper's running example: 16 data bits under a 16-bit address
    // is exactly half useful, under a 32-bit address exactly a third.
    assert!((static_efficiency(data(16), id(16)).get() - 0.5).abs() < 1e-12);
    assert!((static_efficiency(data(16), id(32)).get() - 1.0 / 3.0).abs() < 1e-12);
    // 128-bit data amortizes the same 32-bit header to 0.8.
    assert!((static_efficiency(data(128), id(32)).get() - 0.8).abs() < 1e-12);
    // One header bit on one data bit: the worst case is still defined.
    assert!((static_efficiency(data(1), id(1)).get() - 0.5).abs() < 1e-12);
}

/// Eq. 4: `P(success) = (1 - 2^-H)^(2(T-1))`, recomputed from scratch.
#[test]
fn eq4_closed_form_matches_direct_computation() {
    for h in 1..=24u8 {
        for t in [1u64, 2, 5, 16, 256] {
            let expected = (1.0 - (0.5f64).powi(i32::from(h))).powi(2 * (t as i32 - 1));
            let got = p_success(id(h), density(t));
            assert!(
                (got - expected).abs() < 1e-12,
                "H={h}, T={t}: got {got}, expected {expected}"
            );
        }
    }
    // T = 1 has no contention: success is certain at every width.
    for h in 1..=32u8 {
        assert!((p_success(id(h), density(1)) - 1.0).abs() < 1e-15);
    }
}

/// `p_collision` is exactly the complement of `p_success` across the
/// full sweep of widths and densities.
#[test]
fn collision_and_success_are_complements_across_the_sweep() {
    for h in 1..=32u8 {
        for t in [1u64, 2, 3, 5, 8, 16, 64, 256, 65536] {
            let ps = p_success(id(h), density(t));
            let pc = p_collision(id(h), density(t));
            assert!(
                (ps + pc - 1.0).abs() < 1e-12,
                "H={h}, T={t}: p_success={ps}, p_collision={pc}"
            );
            assert!((0.0..=1.0).contains(&ps), "H={h}, T={t}: p_success={ps}");
            assert!((0.0..=1.0).contains(&pc), "H={h}, T={t}: p_collision={pc}");
        }
    }
}

/// Eq. 3 is Eq. 2 discounted by Eq. 4: `E_aff = E_static * P(success)`.
#[test]
fn eq3_factors_into_eq2_times_eq4() {
    for h in [1u8, 4, 9, 16, 24] {
        for t in [2u64, 16, 256] {
            let expected = static_efficiency(data(16), id(h)).get() * p_success(id(h), density(t));
            let got = aff_efficiency(data(16), id(h), density(t)).get();
            assert!(
                (got - expected).abs() < 1e-12,
                "H={h}, T={t}: got {got}, expected {expected}"
            );
        }
    }
}

/// The paper's Section 4.2 headline: "AFF works optimally with only 9
/// identifier bits in a network where there are an average of 16
/// simultaneous transactions" (16-bit data), beating both static
/// comparators.
#[test]
fn section_4_2_nine_bit_optimum_at_t16_d16() {
    let opt = optimal_id_bits(data(16), density(16));
    assert_eq!(opt.id_bits.get(), 9);
    // The optimum genuinely peaks there: both neighbors do worse.
    let at = |h: u8| aff_efficiency(data(16), id(h), density(16)).get();
    assert!(opt.efficiency.get() > at(8));
    assert!(opt.efficiency.get() > at(10));
    assert!((opt.efficiency.get() - at(9)).abs() < 1e-12);
    // And it beats 16- and 32-bit static allocation (the paper's
    // comparison in Figure 1).
    assert!(opt.efficiency.get() > static_efficiency(data(16), id(16)).get());
    assert!(opt.efficiency.get() > static_efficiency(data(16), id(32)).get());
}
