//! Property-based tests of the analytic model's invariants.

use proptest::prelude::*;
use retri_model::lengths::{DurationClass, MixedLengthModel};
use retri_model::listening::ListeningModel;
use retri_model::stats::Summary;
use retri_model::{
    aff_efficiency, continuous, crossover_density, optimal_id_bits, p_collision, p_success,
    static_efficiency, DataBits, Density, IdBits,
};

fn id_bits() -> impl Strategy<Value = IdBits> {
    (1u8..=64).prop_map(|b| IdBits::new(b).unwrap())
}

fn data_bits() -> impl Strategy<Value = DataBits> {
    (1u32..=100_000).prop_map(|b| DataBits::new(b).unwrap())
}

fn density() -> impl Strategy<Value = Density> {
    (1u64..=1_000_000).prop_map(|t| Density::new(t).unwrap())
}

proptest! {
    /// Probabilities stay in [0, 1] across the whole parameter space.
    #[test]
    fn p_success_is_probability(h in id_bits(), t in density()) {
        let p = p_success(h, t);
        prop_assert!((0.0..=1.0).contains(&p));
        let c = p_collision(h, t);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!((p + c - 1.0).abs() < 1e-9);
    }

    /// P(success) is monotone: nondecreasing in H, nonincreasing in T.
    #[test]
    fn p_success_monotone(h in 1u8..64, t in 1u64..100_000) {
        let h1 = IdBits::new(h).unwrap();
        let h2 = IdBits::new(h + 1).unwrap();
        let t1 = Density::new(t).unwrap();
        let t2 = Density::new(t + 1).unwrap();
        prop_assert!(p_success(h2, t1) >= p_success(h1, t1));
        prop_assert!(p_success(h1, t2) <= p_success(h1, t1));
    }

    /// AFF efficiency is bounded by static efficiency at the same width
    /// and they coincide when T = 1.
    #[test]
    fn aff_bounded_by_static(d in data_bits(), h in id_bits(), t in density()) {
        let aff = aff_efficiency(d, h, t);
        let stat = static_efficiency(d, h);
        prop_assert!(aff <= stat);
        let lone = aff_efficiency(d, h, Density::new(1).unwrap());
        prop_assert!((lone.get() - stat.get()).abs() < 1e-12);
    }

    /// The scan-based integer optimum is never beaten by any other width,
    /// and the continuous peak brackets it within one bit.
    #[test]
    fn optimum_is_optimal(d in data_bits(), t in 1u64..100_000) {
        let t = Density::new(t).unwrap();
        let opt = optimal_id_bits(d, t);
        for h in IdBits::all() {
            prop_assert!(aff_efficiency(d, h, t) <= opt.efficiency);
        }
        let (h_star, _) = continuous::optimal_width(d, t);
        prop_assert!((h_star - opt.id_bits.get() as f64).abs() <= 1.0);
    }

    /// Static efficiency is strictly decreasing in address width and
    /// increasing in data size.
    #[test]
    fn static_efficiency_monotone(d in 1u32..100_000, h in 1u8..64) {
        let d1 = DataBits::new(d).unwrap();
        let d2 = DataBits::new(d + 1).unwrap();
        let h1 = IdBits::new(h).unwrap();
        let h2 = IdBits::new(h + 1).unwrap();
        prop_assert!(static_efficiency(d1, h2) < static_efficiency(d1, h1));
        prop_assert!(static_efficiency(d2, h1) > static_efficiency(d1, h1));
    }

    /// Listening with hear = 0, window = 0 equals Eq. 4; increasing hear
    /// never hurts.
    #[test]
    fn listening_brackets_eq4(h in id_bits(), t in 1u64..10_000, hear in 0.0f64..=1.0) {
        let t = Density::new(t).unwrap();
        let blind = ListeningModel::new(0.0, 0).unwrap();
        prop_assert!((blind.p_success(h, t) - p_success(h, t)).abs() < 1e-9);
        let listener = ListeningModel::new(hear, 0).unwrap();
        prop_assert!(listener.p_success(h, t) >= p_success(h, t) - 1e-12);
        let perfect = ListeningModel::new(1.0, 0).unwrap();
        prop_assert_eq!(perfect.p_success(h, t), 1.0);
    }

    /// A degenerate mixed-length distribution reduces to Eq. 4 regardless
    /// of the (arbitrary) common duration.
    #[test]
    fn mixed_lengths_degenerate_case(
        h in id_bits(),
        t in 1u64..10_000,
        duration in 0.001f64..1_000.0,
    ) {
        let t = Density::new(t).unwrap();
        let model = MixedLengthModel::new(vec![DurationClass { weight: 1.0, duration }]).unwrap();
        prop_assert!((model.p_success(h, t) - p_success(h, t)).abs() < 1e-9);
    }

    /// The binary-search crossover agrees with a brute-force linear scan
    /// on small parameter ranges.
    #[test]
    fn crossover_matches_linear_scan(d in 1u32..200, addr in 2u8..12) {
        let data = DataBits::new(d).unwrap();
        let address = IdBits::new(addr).unwrap();
        let cross = crossover_density(data, address);
        // Brute force over a bounded range.
        let mut linear = None;
        for t in 1..=(1u64 << (addr + 2)) {
            let density = Density::new(t).unwrap();
            let best = retri_model::optimal::best_efficiency(data, density);
            if best > static_efficiency(data, address) {
                linear = Some(t);
            } else {
                break;
            }
        }
        match (cross, linear) {
            (Some(c), Some(l)) => prop_assert_eq!(c.get(), l),
            (None, None) => {}
            (c, l) => prop_assert!(false, "crossover {:?} vs linear {:?}", c, l),
        }
    }

    /// The closed-form optimal DFA frame length (`L* = N`, Barletta et
    /// al.) matches brute-force maximization of the per-slot throughput
    /// over frame lengths, for every population up to 64. The scan runs
    /// well past `N` so the maximum is interior, not an endpoint.
    #[test]
    fn dfa_optimal_frame_matches_brute_force(n in 1u64..=64) {
        let closed = retri_model::dfa::optimal_frame_length(n);
        let brute = (1..=4 * n.max(1))
            .max_by(|&a, &b| {
                retri_model::dfa::slot_throughput(n, a)
                    .partial_cmp(&retri_model::dfa::slot_throughput(n, b))
                    .expect("throughputs are finite")
            })
            .expect("non-empty scan range");
        prop_assert_eq!(closed, brute);
        // And nothing in the scan beats the closed-form optimum.
        let best = retri_model::dfa::slot_throughput(n, closed);
        for l in 1..=4 * n {
            prop_assert!(retri_model::dfa::slot_throughput(n, l) <= best + 1e-12);
        }
    }

    /// Welford summaries match naive two-pass statistics.
    #[test]
    fn summary_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        if xs.len() > 1 {
            let var =
                xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
            prop_assert!((s.std_dev - var.sqrt()).abs() < 1e-3 * (1.0 + var.sqrt()));
        }
    }
}
