//! From efficiency to network lifetime.
//!
//! The point of saving header bits is battery: "every bit transmitted
//! reduces the lifetime of the network" (Pottie, quoted in Section 1),
//! and Section 4.4 notes that on simple low-power radios energy tracks
//! the bits handed to the radio nearly linearly. This module converts
//! the dimensionless efficiency of Eq. 1 into node lifetimes under that
//! linear radio model, making the paper's "increase in efficiency and
//! thus network lifetime" claim (Section 4.3) computable.

use core::fmt;

use crate::efficiency::Efficiency;

/// A node's energy budget and radio cost under the linear model of
/// Section 4.4.
///
/// # Examples
///
/// ```
/// use retri_model::lifetime::EnergyBudget;
///
/// // Two AA cells (~20 kJ) on a 1 µJ/bit radio.
/// let budget = EnergyBudget::new(20_000.0, 1_000.0);
/// assert!((budget.bits_affordable() - 2e10).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyBudget {
    battery_joules: f64,
    tx_nj_per_bit: f64,
}

impl EnergyBudget {
    /// Creates a budget from a battery capacity in joules and a
    /// transmit cost in nanojoules per bit.
    ///
    /// # Panics
    ///
    /// Panics unless both values are positive and finite.
    #[must_use]
    pub fn new(battery_joules: f64, tx_nj_per_bit: f64) -> Self {
        assert!(
            battery_joules.is_finite() && battery_joules > 0.0,
            "battery capacity {battery_joules} J must be positive"
        );
        assert!(
            tx_nj_per_bit.is_finite() && tx_nj_per_bit > 0.0,
            "transmit cost {tx_nj_per_bit} nJ/bit must be positive"
        );
        EnergyBudget {
            battery_joules,
            tx_nj_per_bit,
        }
    }

    /// Total bits the battery can transmit.
    #[must_use]
    pub fn bits_affordable(&self) -> f64 {
        self.battery_joules * 1e9 / self.tx_nj_per_bit
    }

    /// Node lifetime in days, given the *useful* data the application
    /// needs delivered per day and the transmission efficiency achieved
    /// (Eq. 1). Lower efficiency means more bits on the air for the
    /// same useful data, and a proportionally shorter life.
    ///
    /// # Panics
    ///
    /// Panics if `useful_bits_per_day` is not positive.
    #[must_use]
    pub fn lifetime_days(&self, useful_bits_per_day: f64, efficiency: Efficiency) -> f64 {
        assert!(
            useful_bits_per_day.is_finite() && useful_bits_per_day > 0.0,
            "useful data per day must be positive"
        );
        let bits_on_air_per_day = useful_bits_per_day / efficiency.get();
        self.bits_affordable() / bits_on_air_per_day
    }
}

impl fmt::Display for EnergyBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} J battery at {} nJ/bit",
            self.battery_joules, self.tx_nj_per_bit
        )
    }
}

/// Lifetime extension factor of scheme A over scheme B at the same
/// useful-data workload: under the linear radio model this is exactly
/// the efficiency ratio.
///
/// # Examples
///
/// ```
/// use retri_model::lifetime::lifetime_extension;
/// use retri_model::{optimal_id_bits, static_efficiency, DataBits, Density, IdBits};
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// // The paper's headline scenario: optimally sized AFF vs. 32-bit
/// // static addresses extends node lifetime by ~81%.
/// let d = DataBits::new(16)?;
/// let aff = optimal_id_bits(d, Density::new(16)?).efficiency;
/// let stat = static_efficiency(d, IdBits::new(32)?);
/// let factor = lifetime_extension(aff, stat);
/// assert!(factor > 1.8 && factor < 1.82);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn lifetime_extension(a: Efficiency, b: Efficiency) -> f64 {
    a.get() / b.get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efficiency::static_efficiency;
    use crate::optimal::optimal_id_bits;
    use crate::params::{DataBits, Density, IdBits};

    #[test]
    fn bits_affordable_is_linear() {
        let small = EnergyBudget::new(10.0, 1000.0);
        let big = EnergyBudget::new(20.0, 1000.0);
        assert!((big.bits_affordable() / small.bits_affordable() - 2.0).abs() < 1e-12);
        let cheap = EnergyBudget::new(10.0, 500.0);
        assert!((cheap.bits_affordable() / small.bits_affordable() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lifetime_scales_with_efficiency() {
        let budget = EnergyBudget::new(20_000.0, 1_000.0);
        let half = budget.lifetime_days(1_000_000.0, Efficiency::new(0.5));
        let quarter = budget.lifetime_days(1_000_000.0, Efficiency::new(0.25));
        assert!((half / quarter - 2.0).abs() < 1e-12);
    }

    #[test]
    fn paper_headline_lifetime_extension() {
        // D=16, T=16: AFF at 9 bits vs 16-bit static = +21%, vs 32-bit
        // static = +81%.
        let d = DataBits::new(16).unwrap();
        let aff = optimal_id_bits(d, Density::new(16).unwrap()).efficiency;
        let vs16 = lifetime_extension(aff, static_efficiency(d, IdBits::new(16).unwrap()));
        let vs32 = lifetime_extension(aff, static_efficiency(d, IdBits::new(32).unwrap()));
        assert!(vs16 > 1.19 && vs16 < 1.22, "vs16 = {vs16}");
        assert!(vs32 > 1.79 && vs32 < 1.83, "vs32 = {vs32}");
    }

    #[test]
    fn concrete_sensor_lifetime_is_plausible() {
        // 20 kJ battery, 1 µJ/bit, 16 useful bits per minute.
        let budget = EnergyBudget::new(20_000.0, 1_000.0);
        let useful_per_day = 16.0 * 60.0 * 24.0;
        let days = budget.lifetime_days(useful_per_day, Efficiency::new(0.6));
        // 2e10 affordable bits / (23040/0.6 per day) ≈ 5.2e5 days: the
        // radio payload is not the bottleneck at this tiny duty — which
        // is exactly why every header bit is such a visible fraction.
        assert!(days > 1e5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_battery() {
        let _ = EnergyBudget::new(0.0, 1000.0);
    }

    #[test]
    fn display_mentions_units() {
        let text = EnergyBudget::new(20.0, 100.0).to_string();
        assert!(text.contains('J'));
        assert!(text.contains("nJ/bit"));
    }
}
