//! Refinements of Eq. 4: exact collision probabilities.
//!
//! Eq. 4 is deliberately simple — every one of the `2(T-1)` overlap
//! events is treated as an independent uniform draw. Section 8 lists
//! "refining our analysis" as ongoing work; this module provides the
//! two standard exact quantities the approximation brackets:
//!
//! - [`p_success_snapshot`] — the probability that a tagged
//!   transaction's identifier is unique among `T-1` concurrently active
//!   peers at one instant: `(1 - 2^-H)^(T-1)`. Eq. 4 doubles the
//!   exponent to account for the churn of overlapping windows, so it is
//!   always the more pessimistic of the two.
//! - [`p_all_distinct`] — the birthday-problem probability that *all*
//!   `T` concurrent transactions hold mutually distinct identifiers:
//!   `∏_{i=1}^{T-1} (1 - i/2^H)`, exactly zero once `T` exceeds the
//!   pool (pigeonhole).
//! - [`expected_colliding_pairs`] — the expected number of colliding
//!   pairs among `T` concurrent transactions, `C(T,2) / 2^H`, useful
//!   for sizing how many *simultaneous* losses a burst of collisions
//!   can cause.

use crate::params::{Density, IdBits};

/// Probability a tagged transaction is unique among `T - 1` concurrent
/// peers at a snapshot in time.
///
/// # Examples
///
/// ```
/// use retri_model::exact::p_success_snapshot;
/// use retri_model::{p_success, Density, IdBits};
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// let h = IdBits::new(8)?;
/// let t = Density::new(5)?;
/// // Eq. 4 double-counts overlap churn, so it is always at or below
/// // the snapshot probability.
/// assert!(p_success(h, t) <= p_success_snapshot(h, t));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn p_success_snapshot(id: IdBits, density: Density) -> f64 {
    let survival = 1.0 - 1.0 / id.space_size();
    survival.powf((density.get() - 1) as f64)
}

/// Birthday probability that all `T` concurrent transactions hold
/// distinct identifiers.
///
/// Returns exactly `0.0` when `T` exceeds the pool size (pigeonhole).
///
/// # Examples
///
/// ```
/// use retri_model::exact::p_all_distinct;
/// use retri_model::{Density, IdBits};
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// let h = IdBits::new(2)?; // four identifiers
/// assert_eq!(p_all_distinct(h, Density::new(5)?), 0.0); // pigeonhole
/// // T=2 over 4 ids: 3/4 chance of distinctness.
/// assert!((p_all_distinct(h, Density::new(2)?) - 0.75).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn p_all_distinct(id: IdBits, density: Density) -> f64 {
    let pool = id.space_size();
    if u128::from(density.get()) > id.space_len() {
        return 0.0;
    }
    let mut p = 1.0;
    for i in 1..density.get() {
        p *= 1.0 - i as f64 / pool;
        if p == 0.0 {
            break;
        }
    }
    p
}

/// Expected number of colliding identifier pairs among `T` concurrent
/// transactions: `T(T-1)/2 · 2^-H`.
///
/// # Examples
///
/// ```
/// use retri_model::exact::expected_colliding_pairs;
/// use retri_model::{Density, IdBits};
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// // 16 transactions over 512 identifiers: 120 pairs / 512.
/// let pairs = expected_colliding_pairs(IdBits::new(9)?, Density::new(16)?);
/// assert!((pairs - 120.0 / 512.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn expected_colliding_pairs(id: IdBits, density: Density) -> f64 {
    let t = density.get() as f64;
    t * (t - 1.0) / 2.0 / id.space_size()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efficiency::p_success as eq4;

    fn h(bits: u8) -> IdBits {
        IdBits::new(bits).unwrap()
    }
    fn t(density: u64) -> Density {
        Density::new(density).unwrap()
    }

    #[test]
    fn eq4_is_the_pessimistic_bound() {
        for bits in [1u8, 4, 8, 16] {
            for density in [1u64, 2, 5, 16, 256] {
                assert!(
                    eq4(h(bits), t(density)) <= p_success_snapshot(h(bits), t(density)) + 1e-15,
                    "H={bits} T={density}"
                );
            }
        }
    }

    #[test]
    fn snapshot_equals_eq4_squared_relationship() {
        // Eq. 4's exponent is exactly twice the snapshot's, so
        // P_eq4 = P_snapshot^2.
        for bits in [4u8, 8, 12] {
            for density in [2u64, 5, 16] {
                let snap = p_success_snapshot(h(bits), t(density));
                assert!((eq4(h(bits), t(density)) - snap * snap).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn all_distinct_is_stricter_than_tagged_uniqueness() {
        for bits in [4u8, 8] {
            for density in [2u64, 5, 10] {
                assert!(
                    p_all_distinct(h(bits), t(density))
                        <= p_success_snapshot(h(bits), t(density)) + 1e-15
                );
            }
        }
    }

    #[test]
    fn pigeonhole_is_exact() {
        assert_eq!(p_all_distinct(h(2), t(5)), 0.0);
        assert_eq!(p_all_distinct(h(2), t(4)), 4.0 * 3.0 * 2.0 * 1.0 / 256.0);
        assert!(p_all_distinct(h(2), t(4)) > 0.0);
    }

    #[test]
    fn single_transaction_always_distinct() {
        for bits in [1u8, 8, 64] {
            assert_eq!(p_all_distinct(h(bits), t(1)), 1.0);
            assert_eq!(p_success_snapshot(h(bits), t(1)), 1.0);
        }
    }

    #[test]
    fn expected_pairs_scales_quadratically() {
        let one = expected_colliding_pairs(h(10), t(10));
        let double = expected_colliding_pairs(h(10), t(20));
        // 20·19 / 10·9 ≈ 4.22.
        assert!((double / one - (20.0 * 19.0) / (10.0 * 9.0)).abs() < 1e-12);
        assert_eq!(expected_colliding_pairs(h(10), t(1)), 0.0);
    }

    #[test]
    fn all_distinct_monotone_in_width() {
        let mut last = 0.0;
        for bits in 4..=16u8 {
            let p = p_all_distinct(h(bits), t(16));
            assert!(p >= last);
            last = p;
        }
        assert!(last > 0.99);
    }
}
