//! Extension: the economics of RETRI codebooks (paper Section 6).
//!
//! In the attribute-based name-compression context, a node binds a long
//! attribute list (`full_bits` on the air) to a short random code
//! (`code_bits`), pays for one *definition* message carrying both, and
//! then sends only the code. This module answers the two design
//! questions that setting owns:
//!
//! 1. **How much does compression save?** — [`expected_savings`]: the
//!    amortized bits per message as a function of how often a binding is
//!    reused before it is retired.
//! 2. **How likely are code conflicts?** — [`p_conflict_free`]: with
//!    `S` senders holding live bindings in one broadcast domain, the
//!    chance every binding has a distinct code is the birthday
//!    probability over the code space — the same arithmetic as
//!    [`crate::exact::p_all_distinct`], applied to bindings instead of
//!    transactions.
//!
//! Together they expose the trade the paper describes: shorter codes
//! save more per message but conflict more often, and the ephemeral
//! rebinding period bounds how long any conflict can last.

use crate::exact::p_all_distinct;
use crate::params::{Density, IdBits, ModelError};

/// Expected on-air bits per message when a binding of a `full_bits`
/// attribute list to a `code_bits` code is reused for `uses` messages
/// (the definition included): `(full + (uses-1)·code) / uses` plus the
/// per-message framing the caller already pays either way.
///
/// # Panics
///
/// Panics if `uses` is zero — a binding that is never used has no
/// defined per-message cost.
///
/// # Examples
///
/// ```
/// use retri_model::codebook::expected_bits_per_message;
///
/// // A 160-bit attribute list bound to an 8-bit code, reused 20 times:
/// // (160 + 19*8) / 20 = 15.6 bits per message instead of 160.
/// let amortized = expected_bits_per_message(160, 8, 20);
/// assert!((amortized - 15.6).abs() < 1e-12);
/// ```
#[must_use]
pub fn expected_bits_per_message(full_bits: u32, code_bits: u32, uses: u64) -> f64 {
    assert!(uses > 0, "a binding must be used at least once");
    (f64::from(full_bits) + (uses - 1) as f64 * f64::from(code_bits)) / uses as f64
}

/// Fraction of bits saved versus sending the full list every time.
///
/// # Panics
///
/// Panics if `uses` is zero or `full_bits` is zero.
///
/// # Examples
///
/// ```
/// use retri_model::codebook::expected_savings;
///
/// let savings = expected_savings(160, 8, 20);
/// assert!(savings > 0.90);
/// // One use = just the definition: nothing saved.
/// assert_eq!(expected_savings(160, 8, 1), 0.0);
/// ```
#[must_use]
pub fn expected_savings(full_bits: u32, code_bits: u32, uses: u64) -> f64 {
    assert!(full_bits > 0, "attribute list must be non-empty");
    1.0 - expected_bits_per_message(full_bits, code_bits, uses) / f64::from(full_bits)
}

/// Probability that `senders` concurrently live bindings all hold
/// distinct codes from a `code_bits` space (no receiver codebook
/// conflicts).
///
/// # Errors
///
/// Returns [`ModelError`] for invalid widths or a zero sender count.
///
/// # Examples
///
/// ```
/// use retri_model::codebook::p_conflict_free;
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// // Six senders on 6-bit codes: conflicts are uncommon per epoch...
/// assert!(p_conflict_free(6, 6)? > 0.75);
/// // ...but six senders on 2-bit codes cannot all be distinct.
/// assert_eq!(p_conflict_free(2, 6)?, 0.0);
/// # Ok(())
/// # }
/// ```
pub fn p_conflict_free(code_bits: u8, senders: u64) -> Result<f64, ModelError> {
    let code = IdBits::new(code_bits)?;
    let density = Density::new(senders)?;
    Ok(p_all_distinct(code, density))
}

/// The smallest code width keeping the conflict-free probability at or
/// above `target` for `senders` concurrent bindings, if any width
/// `<= 64` does.
///
/// # Examples
///
/// ```
/// use retri_model::codebook::min_code_bits;
///
/// // Six senders, 95% conflict-free epochs: 9 bits suffice.
/// assert_eq!(min_code_bits(6, 0.95), Some(9));
/// ```
#[must_use]
pub fn min_code_bits(senders: u64, target: f64) -> Option<u8> {
    (1..=64u8).find(|&bits| p_conflict_free(bits, senders).is_ok_and(|p| p >= target))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortization_approaches_code_size() {
        // With enough reuse the cost per message approaches the code.
        let few = expected_bits_per_message(160, 8, 2);
        let many = expected_bits_per_message(160, 8, 10_000);
        assert!(few > many);
        assert!((many - 8.0).abs() < 0.1);
    }

    #[test]
    fn savings_monotone_in_reuse() {
        let mut last = -1.0;
        for uses in [1u64, 2, 5, 20, 100] {
            let s = expected_savings(160, 8, uses);
            assert!(s >= last);
            last = s;
        }
        assert!(last > 0.9);
    }

    #[test]
    fn shorter_codes_save_more_but_conflict_more() {
        let save_short = expected_savings(160, 4, 50);
        let save_long = expected_savings(160, 12, 50);
        assert!(save_short > save_long);
        let free_short = p_conflict_free(4, 6).unwrap();
        let free_long = p_conflict_free(12, 6).unwrap();
        assert!(free_short < free_long);
    }

    #[test]
    fn pigeonhole_for_bindings() {
        assert_eq!(p_conflict_free(2, 5).unwrap(), 0.0);
        assert_eq!(p_conflict_free(2, 4).unwrap(), 24.0 / 256.0);
    }

    #[test]
    fn min_code_bits_meets_its_target() {
        for senders in [2u64, 6, 20] {
            for target in [0.5, 0.95, 0.999] {
                let bits = min_code_bits(senders, target).unwrap();
                assert!(p_conflict_free(bits, senders).unwrap() >= target);
                if bits > 1 {
                    assert!(p_conflict_free(bits - 1, senders).unwrap() < target);
                }
            }
        }
    }

    #[test]
    fn min_code_bits_unreachable_target() {
        // Probability can never reach above 1.
        assert_eq!(min_code_bits(6, 1.5), None);
        // But exactly 1.0 is reachable... only asymptotically; for a
        // finite pool the product is < 1 whenever senders > 1.
        assert_eq!(min_code_bits(1, 1.0), Some(1));
    }

    #[test]
    #[should_panic(expected = "at least once")]
    fn zero_uses_panics() {
        let _ = expected_bits_per_message(160, 8, 0);
    }
}
