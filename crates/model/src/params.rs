//! Validated parameter newtypes for the analytic model.
//!
//! The model has three inputs, each wrapped in a newtype so the equations
//! cannot be called with arguments transposed ([C-NEWTYPE]):
//!
//! - [`IdBits`] — the identifier (header) width `H`, in bits.
//! - [`DataBits`] — the data payload `D` of one transaction, in bits.
//! - [`Density`] — the transaction density `T`: the average number of
//!   concurrent transactions visible at a single point in the network.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use core::fmt;

/// The inclusive upper bound on identifier width supported by the model.
///
/// 64 bits is far beyond anything the paper considers (its largest static
/// comparator is Ethernet's 48-bit address space) but lets the model
/// express every realistic design point while keeping identifier values
/// representable in a `u64`.
pub const MAX_ID_BITS: u8 = 64;

/// Error returned when a model parameter is outside its valid domain.
///
/// # Examples
///
/// ```
/// use retri_model::{IdBits, ModelError};
///
/// assert_eq!(IdBits::new(0).unwrap_err(), ModelError::IdBitsOutOfRange(0));
/// assert_eq!(IdBits::new(65).unwrap_err(), ModelError::IdBitsOutOfRange(65));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ModelError {
    /// Identifier width must be in `1..=64` bits.
    IdBitsOutOfRange(u8),
    /// Data size must be at least one bit.
    DataBitsZero,
    /// Transaction density must be at least one (the transaction itself).
    DensityZero,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ModelError::IdBitsOutOfRange(bits) => {
                write!(f, "identifier width {bits} is outside 1..=64 bits")
            }
            ModelError::DataBitsZero => write!(f, "data size must be at least one bit"),
            ModelError::DensityZero => {
                write!(f, "transaction density must be at least one")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Identifier (header) width `H` in bits, validated to `1..=64`.
///
/// In the paper's model the header of every packet consists solely of a
/// transaction identifier, so this is also the per-packet header size.
///
/// # Examples
///
/// ```
/// use retri_model::IdBits;
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// let h = IdBits::new(9)?;
/// assert_eq!(h.get(), 9);
/// assert_eq!(h.space_size(), 512.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct IdBits(u8);

impl IdBits {
    /// Creates an identifier width.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IdBitsOutOfRange`] unless `bits` is in
    /// `1..=64`.
    pub fn new(bits: u8) -> Result<Self, ModelError> {
        if bits == 0 || bits > MAX_ID_BITS {
            Err(ModelError::IdBitsOutOfRange(bits))
        } else {
            Ok(IdBits(bits))
        }
    }

    /// Returns the width in bits.
    #[must_use]
    pub fn get(self) -> u8 {
        self.0
    }

    /// Returns the size of the identifier pool, `2^H`, as a float.
    ///
    /// A float is used because `2^64` overflows `u64` by one; every use in
    /// the model is in floating-point arithmetic anyway.
    #[must_use]
    pub fn space_size(self) -> f64 {
        (self.0 as f64).exp2()
    }

    /// Returns the number of distinct identifiers as a `u128`.
    ///
    /// Unlike [`IdBits::space_size`] this is exact for all valid widths.
    #[must_use]
    pub fn space_len(self) -> u128 {
        1u128 << self.0
    }

    /// Iterates over all valid identifier widths, `1..=64`.
    ///
    /// ```
    /// let widths: Vec<u8> = retri_model::IdBits::all().map(|h| h.get()).collect();
    /// assert_eq!(widths.first(), Some(&1));
    /// assert_eq!(widths.last(), Some(&64));
    /// ```
    pub fn all() -> impl Iterator<Item = IdBits> {
        (1..=MAX_ID_BITS).map(IdBits)
    }
}

impl fmt::Display for IdBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bits", self.0)
    }
}

impl TryFrom<u8> for IdBits {
    type Error = ModelError;

    fn try_from(bits: u8) -> Result<Self, Self::Error> {
        IdBits::new(bits)
    }
}

impl From<IdBits> for u8 {
    fn from(bits: IdBits) -> u8 {
        bits.get()
    }
}

/// Data payload `D` of one transaction, in bits (non-zero).
///
/// The paper's headline design point is `D = 16` (a periodic sensor
/// reading of a few bits); Figure 2 uses `D = 128`.
///
/// # Examples
///
/// ```
/// use retri_model::DataBits;
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// let d = DataBits::new(16)?;
/// assert_eq!(d.get(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct DataBits(u32);

impl DataBits {
    /// Creates a data size.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DataBitsZero`] if `bits` is zero: a
    /// transaction that carries no data has no defined efficiency.
    pub fn new(bits: u32) -> Result<Self, ModelError> {
        if bits == 0 {
            Err(ModelError::DataBitsZero)
        } else {
            Ok(DataBits(bits))
        }
    }

    /// Returns the payload size in bits.
    #[must_use]
    pub fn get(self) -> u32 {
        self.0
    }

    /// Creates a data size from a whole number of bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DataBitsZero`] if `bytes` is zero.
    pub fn from_bytes(bytes: u32) -> Result<Self, ModelError> {
        DataBits::new(bytes.saturating_mul(8))
    }
}

impl fmt::Display for DataBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} data bits", self.0)
    }
}

impl TryFrom<u32> for DataBits {
    type Error = ModelError;

    fn try_from(bits: u32) -> Result<Self, Self::Error> {
        DataBits::new(bits)
    }
}

impl From<DataBits> for u32 {
    fn from(bits: DataBits) -> u32 {
        bits.get()
    }
}

/// Transaction density `T`: concurrent transactions visible at one point
/// in the network (non-zero).
///
/// `T` counts the transaction under consideration itself, so `T = 1`
/// means "no contention" and the model predicts certain success. The
/// paper evaluates `T ∈ {16, 256, 65536}` in Figures 1–2 and `T = 5` in
/// the testbed experiment of Figure 4.
///
/// # Examples
///
/// ```
/// use retri_model::Density;
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// let t = Density::new(16)?;
/// assert_eq!(t.get(), 16);
/// assert_eq!(t.contending_overlaps(), 30); // 2 * (T - 1)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct Density(u64);

impl Density {
    /// Creates a transaction density.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DensityZero`] if `t` is zero.
    pub fn new(t: u64) -> Result<Self, ModelError> {
        if t == 0 {
            Err(ModelError::DensityZero)
        } else {
            Ok(Density(t))
        }
    }

    /// Returns the density value `T`.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Number of potentially conflicting transaction overlaps, `2(T-1)`.
    ///
    /// With all transactions assumed to span equal time, a transaction
    /// overlaps the beginning or end of at most `2(T-1)` others (paper
    /// Section 4.1); this is the exponent of Eq. 4.
    #[must_use]
    pub fn contending_overlaps(self) -> u64 {
        2 * (self.0 - 1)
    }
}

impl fmt::Display for Density {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T={}", self.0)
    }
}

impl TryFrom<u64> for Density {
    type Error = ModelError;

    fn try_from(t: u64) -> Result<Self, Self::Error> {
        Density::new(t)
    }
}

impl From<Density> for u64 {
    fn from(t: Density) -> u64 {
        t.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_bits_accepts_full_valid_range() {
        for bits in 1..=64u8 {
            assert_eq!(IdBits::new(bits).unwrap().get(), bits);
        }
    }

    #[test]
    fn id_bits_rejects_zero_and_too_large() {
        assert_eq!(IdBits::new(0), Err(ModelError::IdBitsOutOfRange(0)));
        assert_eq!(IdBits::new(65), Err(ModelError::IdBitsOutOfRange(65)));
        assert_eq!(IdBits::new(255), Err(ModelError::IdBitsOutOfRange(255)));
    }

    #[test]
    fn id_bits_space_size_matches_exact_len() {
        for h in IdBits::all() {
            if h.get() < 53 {
                // f64 is exact for powers of two below 2^53.
                assert_eq!(h.space_size() as u128, h.space_len());
            }
        }
        assert_eq!(IdBits::new(64).unwrap().space_len(), 1u128 << 64);
    }

    #[test]
    fn id_bits_all_yields_64_widths() {
        assert_eq!(IdBits::all().count(), 64);
    }

    #[test]
    fn data_bits_from_bytes_multiplies_by_eight() {
        assert_eq!(DataBits::from_bytes(10).unwrap().get(), 80);
        assert_eq!(DataBits::from_bytes(0), Err(ModelError::DataBitsZero));
    }

    #[test]
    fn data_bits_rejects_zero() {
        assert_eq!(DataBits::new(0), Err(ModelError::DataBitsZero));
    }

    #[test]
    fn density_overlaps_formula() {
        assert_eq!(Density::new(1).unwrap().contending_overlaps(), 0);
        assert_eq!(Density::new(5).unwrap().contending_overlaps(), 8);
        assert_eq!(Density::new(16).unwrap().contending_overlaps(), 30);
    }

    #[test]
    fn density_rejects_zero() {
        assert_eq!(Density::new(0), Err(ModelError::DensityZero));
    }

    #[test]
    fn conversions_round_trip() {
        let h = IdBits::try_from(12u8).unwrap();
        assert_eq!(u8::from(h), 12);
        let d = DataBits::try_from(16u32).unwrap();
        assert_eq!(u32::from(d), 16);
        let t = Density::try_from(5u64).unwrap();
        assert_eq!(u64::from(t), 5);
    }

    #[test]
    fn errors_have_nonempty_display() {
        for err in [
            ModelError::IdBitsOutOfRange(0),
            ModelError::DataBitsZero,
            ModelError::DensityZero,
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn display_formats_are_informative() {
        assert_eq!(IdBits::new(9).unwrap().to_string(), "9 bits");
        assert_eq!(DataBits::new(16).unwrap().to_string(), "16 data bits");
        assert_eq!(Density::new(5).unwrap().to_string(), "T=5");
    }
}
