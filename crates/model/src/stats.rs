//! Summary statistics shared by the experiment harness.
//!
//! The paper's Figure 4 reports, for each identifier size, the mean
//! collision rate over ten trials with error bars showing one standard
//! deviation. [`Summary`] computes exactly those quantities, and
//! [`Summary::agrees_with`] is the acceptance test the integration suite
//! uses to declare the simulation "validated against the model".

use core::fmt;

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long experiment runs; used by the simulator's
/// per-trial metrics as well as the figure harness.
///
/// # Examples
///
/// ```
/// use retri_model::stats::Welford;
///
/// let mut acc = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     acc.push(x);
/// }
/// let summary = acc.summary();
/// assert_eq!(summary.mean, 5.0);
/// assert!((summary.std_dev - 2.138089935299395).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Finalizes into a [`Summary`].
    ///
    /// # Panics
    ///
    /// Panics if no observations were pushed; an empty sample has no
    /// defined mean.
    #[must_use]
    pub fn summary(&self) -> Summary {
        assert!(self.count > 0, "cannot summarize an empty sample");
        let variance = if self.count > 1 {
            self.m2 / (self.count - 1) as f64
        } else {
            0.0
        };
        Summary {
            n: self.count,
            mean: self.mean,
            std_dev: variance.sqrt(),
            min: self.min,
            max: self.max,
        }
    }
}

impl Extend<f64> for Welford {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Summary statistics of a sample: count, mean, sample standard
/// deviation, and range.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    /// Number of observations.
    pub n: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n - 1` denominator; 0 for one sample).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a slice of observations.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is empty.
    #[must_use]
    pub fn of(sample: &[f64]) -> Self {
        let mut acc = Welford::new();
        acc.extend(sample.iter().copied());
        acc.summary()
    }

    /// Standard error of the mean, `s / sqrt(n)`.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        self.std_dev / (self.n as f64).sqrt()
    }

    /// Whether a model prediction is consistent with this sample.
    ///
    /// Accepts if the prediction lies within `sigmas` standard errors of
    /// the sample mean, or within `abs_tol` absolutely — the latter keeps
    /// the check meaningful when the sample variance collapses to zero
    /// (e.g. a collision rate of exactly 0 across all trials at large
    /// identifier sizes).
    ///
    /// # Examples
    ///
    /// ```
    /// use retri_model::stats::Summary;
    ///
    /// let observed = Summary::of(&[0.29, 0.31, 0.30, 0.32, 0.28]);
    /// assert!(observed.agrees_with(0.30, 3.0, 0.01));
    /// assert!(!observed.agrees_with(0.60, 3.0, 0.01));
    /// ```
    #[must_use]
    pub fn agrees_with(&self, predicted: f64, sigmas: f64, abs_tol: f64) -> bool {
        let deviation = (self.mean - predicted).abs();
        deviation <= sigmas * self.std_error() || deviation <= abs_tol
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (n={}, range {:.4}..{:.4})",
            self.mean, self.std_dev, self.n, self.min, self.max
        )
    }
}

/// Two-sided z critical value for a 99% confidence level.
pub const Z_99: f64 = 2.575_829_303_548_901;

/// A Wilson score interval for a binomial proportion.
///
/// The differential harness uses it to ask "is the analytic success
/// probability of Eq. 4 statistically consistent with the simulator's
/// observed success count?" — the Wilson interval stays well-behaved at
/// proportions near 0 or 1 and at the modest trial counts of a quick
/// sweep, where the normal approximation interval collapses or escapes
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WilsonInterval {
    /// Lower bound (clamped to `[0, 1]` by construction).
    pub low: f64,
    /// Upper bound (clamped to `[0, 1]` by construction).
    pub high: f64,
}

impl WilsonInterval {
    /// Computes the interval for `successes` out of `trials` at the
    /// two-sided critical value `z` (e.g. [`Z_99`]).
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero, `successes > trials`, or `z` is not
    /// positive.
    #[must_use]
    pub fn of(successes: u64, trials: u64, z: f64) -> Self {
        assert!(trials > 0, "Wilson interval needs at least one trial");
        assert!(
            successes <= trials,
            "successes {successes} exceed trials {trials}"
        );
        assert!(z > 0.0, "critical value must be positive, got {z}");
        let n = trials as f64;
        let p = successes as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        WilsonInterval {
            low: (center - half).max(0.0),
            high: (center + half).min(1.0),
        }
    }

    /// Whether `p` lies inside the interval (inclusive).
    #[must_use]
    pub fn contains(&self, p: f64) -> bool {
        self.low <= p && p <= self.high
    }

    /// The interval's width.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.high - self.low
    }
}

impl fmt::Display for WilsonInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.4}, {:.4}]", self.low, self.high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass_computation() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let summary = Summary::of(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((summary.mean - mean).abs() < 1e-12);
        assert!((summary.std_dev - var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_observation_has_zero_std_dev() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn min_max_track_extremes() {
        let s = Summary::of(&[3.0, -1.0, 7.5, 2.0]);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 7.5);
    }

    #[test]
    fn std_error_shrinks_with_sample_size() {
        let small = Summary::of(&[1.0, 2.0, 3.0]);
        let mut big_sample = Vec::new();
        for _ in 0..30 {
            big_sample.extend_from_slice(&[1.0, 2.0, 3.0]);
        }
        let big = Summary::of(&big_sample);
        assert!(big.std_error() < small.std_error());
    }

    #[test]
    fn agreement_uses_absolute_tolerance_when_variance_collapses() {
        // Ten trials that all observed exactly zero collisions.
        let s = Summary::of(&[0.0; 10]);
        assert_eq!(s.std_error(), 0.0);
        // A tiny positive prediction (e.g. 2^-16-ish rates) still agrees.
        assert!(s.agrees_with(1e-4, 3.0, 1e-3));
        assert!(!s.agrees_with(0.5, 3.0, 1e-3));
    }

    #[test]
    fn extend_accepts_iterators() {
        let mut acc = Welford::new();
        acc.extend((1..=5).map(|i| i as f64));
        assert_eq!(acc.count(), 5);
        assert_eq!(acc.summary().mean, 3.0);
    }

    #[test]
    fn display_includes_mean_and_n() {
        let text = Summary::of(&[1.0, 2.0]).to_string();
        assert!(text.contains("1.5"));
        assert!(text.contains("n=2"));
    }

    #[test]
    fn wilson_matches_reference_values() {
        // Classic textbook case: 8 successes in 10 trials at 95%
        // (z = 1.959964): Wilson gives [0.4901, 0.9433].
        let w = WilsonInterval::of(8, 10, 1.959_964);
        assert!((w.low - 0.4901).abs() < 5e-4, "low {}", w.low);
        assert!((w.high - 0.9433).abs() < 5e-4, "high {}", w.high);
    }

    #[test]
    fn wilson_contains_the_sample_proportion() {
        for &(s, n) in &[(0u64, 5u64), (1, 7), (50, 100), (99, 100), (100, 100)] {
            let w = WilsonInterval::of(s, n, Z_99);
            let p = s as f64 / n as f64;
            assert!(w.contains(p), "{w} must contain {p}");
            assert!((0.0..=1.0).contains(&w.low));
            assert!((0.0..=1.0).contains(&w.high));
        }
    }

    #[test]
    fn wilson_narrows_with_more_trials() {
        let small = WilsonInterval::of(8, 10, Z_99);
        let large = WilsonInterval::of(800, 1000, Z_99);
        assert!(large.width() < small.width());
        assert!(large.contains(0.8));
    }

    #[test]
    fn wilson_extremes_stay_informative() {
        // All failures / all successes still give nondegenerate bounds.
        let none = WilsonInterval::of(0, 20, Z_99);
        assert_eq!(none.low, 0.0);
        assert!(none.high > 0.0 && none.high < 0.5);
        let all = WilsonInterval::of(20, 20, Z_99);
        assert_eq!(all.high, 1.0);
        assert!(all.low > 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn wilson_rejects_empty_samples() {
        let _ = WilsonInterval::of(0, 0, Z_99);
    }

    #[test]
    #[should_panic(expected = "exceed trials")]
    fn wilson_rejects_impossible_counts() {
        let _ = WilsonInterval::of(5, 4, Z_99);
    }
}
