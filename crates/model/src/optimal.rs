//! Optimal identifier sizing and break-even analysis.
//!
//! The AFF efficiency curve (Eq. 3) balances two opposing goals — fewer
//! header bits per data bit versus fewer identifier collisions — and has a
//! single peak (paper Section 4.2). This module finds that peak and the
//! operating regions where AFF beats static allocation.

use core::fmt;

use crate::efficiency::{aff_efficiency, static_efficiency, Efficiency};
use crate::params::{DataBits, Density, IdBits};

/// The peak of the AFF efficiency curve for one scenario.
///
/// Produced by [`optimal_id_bits`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OptimalPoint {
    /// The identifier width maximizing efficiency.
    pub id_bits: IdBits,
    /// The efficiency achieved at that width.
    pub efficiency: Efficiency,
    /// The transaction success probability at that width.
    pub p_success: f64,
}

impl fmt::Display for OptimalPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "optimum at {} ({}, P(success)={:.4})",
            self.id_bits, self.efficiency, self.p_success
        )
    }
}

/// Finds the identifier width in `1..=64` maximizing AFF efficiency.
///
/// Ties (which can only occur in degenerate floating-point corner cases)
/// resolve to the *smallest* width, matching the paper's preference for
/// fewer header bits.
///
/// # Examples
///
/// ```
/// use retri_model::{optimal_id_bits, DataBits, Density};
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// // Figure 1's headline point: D=16, T=16 peaks at 9 identifier bits.
/// let opt = optimal_id_bits(DataBits::new(16)?, Density::new(16)?);
/// assert_eq!(opt.id_bits.get(), 9);
///
/// // Figure 2: larger data (D=128) pushes the optimum to more bits,
/// // because a collision now wastes more data.
/// let opt128 = optimal_id_bits(DataBits::new(128)?, Density::new(16)?);
/// assert!(opt128.id_bits > opt.id_bits);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn optimal_id_bits(data: DataBits, density: Density) -> OptimalPoint {
    let mut best = OptimalPoint {
        id_bits: IdBits::new(1).expect("1 is a valid width"),
        efficiency: aff_efficiency(data, IdBits::new(1).expect("1 is a valid width"), density),
        p_success: crate::efficiency::p_success(
            IdBits::new(1).expect("1 is a valid width"),
            density,
        ),
    };
    for id in IdBits::all().skip(1) {
        let e = aff_efficiency(data, id, density);
        // total_cmp, not PartialOrd: a NaN from an arithmetic bug must
        // order deterministically instead of silently losing every
        // comparison and masquerading as "width 1 is optimal".
        if e.total_cmp(&best.efficiency).is_gt() {
            best = OptimalPoint {
                id_bits: id,
                efficiency: e,
                p_success: crate::efficiency::p_success(id, density),
            };
        }
    }
    best
}

/// The best AFF efficiency achievable at a given scenario (over all
/// identifier widths).
#[must_use]
pub fn best_efficiency(data: DataBits, density: Density) -> Efficiency {
    optimal_id_bits(data, density).efficiency
}

/// Whether optimally sized AFF strictly beats a static allocation of
/// `address` bits for this scenario.
///
/// # Examples
///
/// ```
/// use retri_model::{crossover_density, DataBits, IdBits};
/// use retri_model::optimal::aff_beats_static;
/// use retri_model::Density;
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// let d = DataBits::new(16)?;
/// let static16 = IdBits::new(16)?;
/// assert!(aff_beats_static(d, Density::new(16)?, static16));
/// assert!(!aff_beats_static(d, Density::new(65536)?, static16));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn aff_beats_static(data: DataBits, density: Density, address: IdBits) -> bool {
    best_efficiency(data, density)
        .total_cmp(&static_efficiency(data, address))
        .is_gt()
}

/// The largest transaction density at which optimally sized AFF still
/// strictly beats a static allocation of `address` bits.
///
/// Returns `None` if AFF does not win even at `T = 1` (impossible for
/// `address >= 2`, since AFF with one fewer bit and no contention always
/// wins, but kept for API robustness).
///
/// Because best-case AFF efficiency is nonincreasing in `T` while static
/// efficiency is constant, the crossover is found by binary search.
///
/// # Examples
///
/// ```
/// use retri_model::{crossover_density, DataBits, IdBits};
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// let d = DataBits::new(16)?;
/// // AFF beats a 16-bit static space for densities well into the
/// // thousands, and the advantage disappears as the space saturates.
/// let cross = crossover_density(d, IdBits::new(16)?).unwrap();
/// assert!(cross.get() > 16);
/// assert!(cross.get() < 65536);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn crossover_density(data: DataBits, address: IdBits) -> Option<Density> {
    let one = Density::new(1).expect("1 is a valid density");
    if !aff_beats_static(data, one, address) {
        return None;
    }
    // Exponential search for an upper bound where AFF no longer wins.
    let mut hi = 2u64;
    while aff_beats_static(data, Density::new(hi).expect("nonzero"), address) {
        if hi >= 1 << 48 {
            // AFF wins at any density we can meaningfully model; treat the
            // bound as the crossover.
            return Some(Density::new(hi).expect("nonzero"));
        }
        hi *= 2;
    }
    // Invariant: wins at lo, loses at hi.
    let mut lo = hi / 2;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if aff_beats_static(data, Density::new(mid).expect("nonzero"), address) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(Density::new(lo).expect("nonzero"))
}

/// Relative efficiency advantage of optimally sized AFF over a static
/// allocation: `E_aff_best / E_static - 1`.
///
/// Positive values mean AFF extends network lifetime by that fraction at
/// the same workload; negative values mean static allocation wins.
///
/// # Examples
///
/// ```
/// use retri_model::optimal::advantage_over_static;
/// use retri_model::{DataBits, Density, IdBits};
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// let adv = advantage_over_static(
///     DataBits::new(16)?,
///     Density::new(16)?,
///     IdBits::new(32)?,
/// );
/// // Versus 32-bit static addresses the paper's headline scenario gains
/// // roughly 80% efficiency.
/// assert!(adv > 0.7 && adv < 0.9);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn advantage_over_static(data: DataBits, density: Density, address: IdBits) -> f64 {
    best_efficiency(data, density).get() / static_efficiency(data, address).get() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(bits: u32) -> DataBits {
        DataBits::new(bits).unwrap()
    }
    fn h(bits: u8) -> IdBits {
        IdBits::new(bits).unwrap()
    }
    fn t(density: u64) -> Density {
        Density::new(density).unwrap()
    }

    #[test]
    fn optimum_is_global_maximum() {
        for (data, density) in [(16, 16), (16, 256), (128, 16), (128, 65536), (1, 2)] {
            let opt = optimal_id_bits(d(data), t(density));
            for id in IdBits::all() {
                assert!(
                    aff_efficiency(d(data), id, t(density)) <= opt.efficiency,
                    "width {id} beats claimed optimum for D={data}, T={density}"
                );
            }
        }
    }

    #[test]
    fn paper_fig1_optimum_is_nine_bits_at_t16() {
        assert_eq!(optimal_id_bits(d(16), t(16)).id_bits.get(), 9);
    }

    #[test]
    fn optimum_grows_with_density() {
        let o16 = optimal_id_bits(d(16), t(16)).id_bits;
        let o256 = optimal_id_bits(d(16), t(256)).id_bits;
        let o64k = optimal_id_bits(d(16), t(65536)).id_bits;
        assert!(o16 < o256);
        assert!(o256 < o64k);
    }

    #[test]
    fn optimum_grows_with_data_size() {
        // Figure 2 commentary: larger data makes collisions costlier, so
        // the optimal identifier gets longer.
        let small = optimal_id_bits(d(16), t(16)).id_bits;
        let large = optimal_id_bits(d(128), t(16)).id_bits;
        assert!(large > small);
    }

    #[test]
    fn no_contention_optimum_is_one_bit() {
        // With T=1 there are no collisions, so the shortest identifier
        // maximizes efficiency.
        assert_eq!(optimal_id_bits(d(16), t(1)).id_bits.get(), 1);
    }

    #[test]
    fn crossover_exists_for_paper_scenario() {
        let cross = crossover_density(d(16), h(16)).unwrap();
        // AFF must win at the paper's T=16 and lose by T=64K.
        assert!(cross.get() >= 16);
        assert!(cross.get() < 65536);
        // Exactness: wins at the crossover, loses just past it.
        assert!(aff_beats_static(d(16), cross, h(16)));
        assert!(!aff_beats_static(d(16), t(cross.get() + 1), h(16)));
    }

    #[test]
    fn crossover_against_huge_static_space_is_far_out() {
        // Against Ethernet-scale 48-bit addresses AFF keeps winning to
        // extremely high densities.
        let cross = crossover_density(d(16), h(48)).unwrap();
        assert!(cross.get() > 1_000_000);
    }

    #[test]
    fn advantage_positive_in_locality_regime_negative_when_saturated() {
        assert!(advantage_over_static(d(16), t(16), h(16)) > 0.0);
        assert!(advantage_over_static(d(16), t(65536), h(16)) < 0.0);
    }

    #[test]
    fn optimal_point_display_mentions_bits() {
        let opt = optimal_id_bits(d(16), t(16));
        let text = opt.to_string();
        assert!(text.contains("9 bits"), "unexpected display: {text}");
    }
}
