//! Extension: a model of the *listening* heuristic (paper Section 3.2).
//!
//! Instead of picking identifiers blindly, a node can listen to ongoing
//! transmissions and avoid identifiers it has recently heard. The paper
//! measures this heuristic (Figure 4, "listening" series) but models only
//! the pessimistic uniform-selection bound (Eq. 4), leaving a listening
//! model as future work (Section 8). This module provides that refinement.
//!
//! # Model
//!
//! Consider a tagged transaction contending with up to `2(T-1)` overlap
//! events (as in Eq. 4). For each overlapping transaction:
//!
//! - With probability `hear` the tagged sender heard the contender's
//!   identifier before picking its own (it was transmitted in range,
//!   wasn't lost, and the radio was listening). Avoidance then makes a
//!   collision with *that* contender impossible, at the price of
//!   shrinking the selection pool from `2^H` to `2^H - w`, where `w` is
//!   the avoidance-window size (the paper uses the `2T` most recently
//!   heard identifiers).
//! - With probability `1 - hear` the contender was not heard (hidden
//!   terminal, RF loss, radio asleep, or a simultaneous-pick race) and the
//!   collision probability for that overlap is `1 / (2^H - w)` — uniform
//!   over the reduced pool.
//!
//! giving
//!
//! ```text
//! P(success) = (1 - (1 - hear) / (2^H - w))^(2(T-1))    for w < 2^H
//! ```
//!
//! With `hear = 0` and `w = 0` this degenerates to Eq. 4 exactly, and
//! with `hear = 1` collisions vanish — the two envelopes visible in the
//! paper's Figure 4.

use core::fmt;

use crate::efficiency::Efficiency;
use crate::params::{DataBits, Density, IdBits};

/// Error returned when listening-model parameters are out of domain.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ListeningError {
    /// `hear` must be a probability in `[0, 1]`.
    HearProbabilityOutOfRange(f64),
    /// The avoidance window must leave at least one identifier to pick:
    /// `window < 2^H`.
    WindowExhaustsPool {
        /// Requested window size.
        window: u64,
        /// Identifier width whose pool it exhausts.
        id_bits: IdBits,
    },
}

impl fmt::Display for ListeningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ListeningError::HearProbabilityOutOfRange(p) => {
                write!(f, "hear probability {p} outside [0, 1]")
            }
            ListeningError::WindowExhaustsPool { window, id_bits } => write!(
                f,
                "avoidance window {window} leaves no free identifier in a {id_bits} pool"
            ),
        }
    }
}

impl std::error::Error for ListeningError {}

/// Parameters of the listening refinement.
///
/// # Examples
///
/// ```
/// use retri_model::listening::ListeningModel;
/// use retri_model::{Density, IdBits};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let t = Density::new(5)?;
/// let h = IdBits::new(8)?;
///
/// // Perfect listening in a fully connected testbed: no collisions.
/// let perfect = ListeningModel::new(1.0, t.get() * 2)?;
/// assert_eq!(perfect.p_success(h, t), 1.0);
///
/// // No listening degenerates to the pessimistic Eq. 4 bound.
/// let blind = ListeningModel::new(0.0, 0)?;
/// let eq4 = retri_model::p_success(h, t);
/// assert!((blind.p_success(h, t) - eq4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ListeningModel {
    hear: f64,
    window: u64,
}

impl ListeningModel {
    /// Creates a listening model.
    ///
    /// `hear` is the probability that a contender's identifier was heard
    /// before selection; `window` is the number of recently heard
    /// identifiers a sender avoids (the paper's adaptive rule uses
    /// `2T`).
    ///
    /// # Errors
    ///
    /// Returns [`ListeningError::HearProbabilityOutOfRange`] if `hear`
    /// is not in `[0, 1]`.
    pub fn new(hear: f64, window: u64) -> Result<Self, ListeningError> {
        if !(0.0..=1.0).contains(&hear) {
            return Err(ListeningError::HearProbabilityOutOfRange(hear));
        }
        Ok(ListeningModel { hear, window })
    }

    /// The paper's adaptive window rule: avoid identifiers heard within
    /// the most recent `2T` transactions (Section 5.1).
    ///
    /// # Errors
    ///
    /// Returns [`ListeningError::HearProbabilityOutOfRange`] if `hear` is
    /// not in `[0, 1]`.
    pub fn with_adaptive_window(hear: f64, density: Density) -> Result<Self, ListeningError> {
        ListeningModel::new(hear, 2 * density.get())
    }

    /// Returns the hear probability.
    #[must_use]
    pub fn hear(&self) -> f64 {
        self.hear
    }

    /// Returns the avoidance-window size.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Effective per-overlap collision probability at width `id`.
    ///
    /// # Errors
    ///
    /// Returns [`ListeningError::WindowExhaustsPool`] if the avoidance
    /// window is at least the pool size: a sender that refuses every
    /// identifier cannot transmit at all.
    pub fn try_p_collision_per_overlap(&self, id: IdBits) -> Result<f64, ListeningError> {
        let pool = id.space_size();
        let window = self.window as f64;
        if window >= pool {
            return Err(ListeningError::WindowExhaustsPool {
                window: self.window,
                id_bits: id,
            });
        }
        Ok((1.0 - self.hear) / (pool - window))
    }

    /// Transaction success probability under listening.
    ///
    /// # Panics
    ///
    /// Panics if the avoidance window exhausts the identifier pool; use
    /// [`ListeningModel::try_p_success`] to handle that case.
    #[must_use]
    pub fn p_success(&self, id: IdBits, density: Density) -> f64 {
        self.try_p_success(id, density)
            .expect("avoidance window must be smaller than the identifier pool")
    }

    /// Transaction success probability under listening.
    ///
    /// # Errors
    ///
    /// Returns [`ListeningError::WindowExhaustsPool`] if the window is at
    /// least the pool size.
    pub fn try_p_success(&self, id: IdBits, density: Density) -> Result<f64, ListeningError> {
        let c = self.try_p_collision_per_overlap(id)?;
        Ok((1.0 - c).powf(density.contending_overlaps() as f64))
    }

    /// AFF efficiency (Eq. 3) with the listening success probability.
    ///
    /// # Errors
    ///
    /// Returns [`ListeningError::WindowExhaustsPool`] if the window is at
    /// least the pool size.
    pub fn try_efficiency(
        &self,
        data: DataBits,
        id: IdBits,
        density: Density,
    ) -> Result<Efficiency, ListeningError> {
        let p = self.try_p_success(id, density)?;
        let d = data.get() as f64;
        let h = id.get() as f64;
        Ok(Efficiency::new(d / (d + h) * p))
    }
}

impl Default for ListeningModel {
    /// A blind selector: no listening, no avoidance (Eq. 4 exactly).
    fn default() -> Self {
        ListeningModel {
            hear: 0.0,
            window: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efficiency::p_success as eq4_p_success;

    fn h(bits: u8) -> IdBits {
        IdBits::new(bits).unwrap()
    }
    fn t(density: u64) -> Density {
        Density::new(density).unwrap()
    }

    #[test]
    fn rejects_bad_hear_probability() {
        assert!(matches!(
            ListeningModel::new(-0.1, 0),
            Err(ListeningError::HearProbabilityOutOfRange(_))
        ));
        assert!(matches!(
            ListeningModel::new(1.1, 0),
            Err(ListeningError::HearProbabilityOutOfRange(_))
        ));
    }

    #[test]
    fn blind_model_matches_eq4() {
        let blind = ListeningModel::default();
        for bits in [1u8, 4, 8, 16] {
            for density in [1u64, 5, 16] {
                let got = blind.p_success(h(bits), t(density));
                let want = eq4_p_success(h(bits), t(density));
                assert!((got - want).abs() < 1e-12, "H={bits} T={density}");
            }
        }
    }

    #[test]
    fn perfect_listening_never_collides() {
        let m = ListeningModel::new(1.0, 10).unwrap();
        assert_eq!(m.p_success(h(8), t(5)), 1.0);
        assert_eq!(m.p_success(h(8), t(256)), 1.0);
    }

    #[test]
    fn listening_dominates_blind_selection() {
        // With any positive hear probability and a window that does not
        // meaningfully shrink the pool, listening is at least as good.
        let blind = ListeningModel::default();
        let listen = ListeningModel::with_adaptive_window(0.9, t(5)).unwrap();
        for bits in 5..=16 {
            assert!(
                listen.p_success(h(bits), t(5)) >= blind.p_success(h(bits), t(5)),
                "listening must not hurt at H={bits}"
            );
        }
    }

    #[test]
    fn window_shrinks_pool_and_can_hurt_with_no_hearing() {
        // Avoidance without hearing is pure loss: the pool shrinks but no
        // collisions are prevented. This is why the paper says listening
        // "is usually not as helpful as making the identifier pool larger".
        let none = ListeningModel::new(0.0, 0).unwrap();
        let deaf_avoider = ListeningModel::new(0.0, 12).unwrap();
        assert!(deaf_avoider.p_success(h(4), t(5)) < none.p_success(h(4), t(5)));
    }

    #[test]
    fn exhausted_pool_is_an_error() {
        let m = ListeningModel::new(0.5, 16).unwrap();
        assert!(matches!(
            m.try_p_success(h(4), t(5)),
            Err(ListeningError::WindowExhaustsPool { .. })
        ));
        // One identifier left is still fine.
        let m = ListeningModel::new(0.5, 15).unwrap();
        assert!(m.try_p_success(h(4), t(5)).is_ok());
    }

    #[test]
    #[should_panic(expected = "avoidance window")]
    fn p_success_panics_on_exhausted_pool() {
        let m = ListeningModel::new(0.5, 300).unwrap();
        let _ = m.p_success(h(8), t(5));
    }

    #[test]
    fn efficiency_scales_with_success() {
        let d = DataBits::new(16).unwrap();
        let listen = ListeningModel::with_adaptive_window(0.95, t(5)).unwrap();
        let e = listen.try_efficiency(d, h(8), t(5)).unwrap();
        let blind = crate::efficiency::aff_efficiency(d, h(8), t(5));
        assert!(e >= blind);
    }

    #[test]
    fn errors_display_nonempty() {
        let err = ListeningModel::new(2.0, 0).unwrap_err();
        assert!(!err.to_string().is_empty());
        let err = ListeningModel::new(0.5, 1 << 20)
            .unwrap()
            .try_p_success(h(4), t(5))
            .unwrap_err();
        assert!(err.to_string().contains("window"));
    }
}
