//! Extension: non-uniform transaction lengths.
//!
//! Eq. 4 assumes every transaction spans the same amount of time — a
//! limitation the paper calls out explicitly in Section 4.1 ("two long
//! transactions will have different collision characteristics than a long
//! transaction competing with a series of short transactions, even though
//! T = 2 in both cases") and lists as future work in Section 8. This
//! module generalizes the model to a discrete distribution of transaction
//! durations.
//!
//! # Model
//!
//! Let transactions arrive as a Poisson-like stream with rate `λ` and
//! durations drawn i.i.d. from a discrete distribution with mean `E[L]`.
//! By Little's law the average number of *other* concurrent transactions
//! is `λ·E[L]`, so a target density `T` fixes `λ = (T - 1) / E[L]`.
//!
//! A tagged transaction of duration `ℓ` overlaps every transaction that
//! starts during it (`λ·ℓ` expected) and every transaction that is already
//! in flight when it starts (`λ·E[L]` expected, by PASTA), giving an
//! expected overlap count `λ·(ℓ + E[L])`. Each overlap independently
//! collides with probability `2^-H`, so
//!
//! ```text
//! P(success | ℓ) = (1 - 2^-H)^(λ (ℓ + E[L]))
//! P(success)     = Σ_ℓ  w_ℓ · P(success | ℓ)
//! ```
//!
//! With all durations equal this reduces to `λ·2L = 2(T-1)` overlaps —
//! Eq. 4 exactly — so the generalization is conservative.

use core::fmt;

use crate::efficiency::Efficiency;
use crate::params::{DataBits, Density, IdBits};

/// Error returned when a duration distribution is invalid.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum LengthModelError {
    /// The distribution must contain at least one class.
    EmptyDistribution,
    /// Every weight must be positive and finite.
    NonPositiveWeight(f64),
    /// Every duration must be positive and finite.
    NonPositiveDuration(f64),
}

impl fmt::Display for LengthModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LengthModelError::EmptyDistribution => {
                write!(f, "duration distribution must not be empty")
            }
            LengthModelError::NonPositiveWeight(w) => {
                write!(f, "distribution weight {w} must be positive and finite")
            }
            LengthModelError::NonPositiveDuration(l) => {
                write!(f, "transaction duration {l} must be positive and finite")
            }
        }
    }
}

impl std::error::Error for LengthModelError {}

/// One class of transaction durations: a relative weight and a duration
/// (any time unit, as long as it is consistent across classes).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DurationClass {
    /// Relative frequency of this class (normalized internally).
    pub weight: f64,
    /// Duration of transactions in this class.
    pub duration: f64,
}

/// A collision model for transactions of mixed durations.
///
/// # Examples
///
/// ```
/// use retri_model::lengths::{DurationClass, MixedLengthModel};
/// use retri_model::{p_success, Density, IdBits};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let h = IdBits::new(8)?;
/// let t = Density::new(5)?;
///
/// // Degenerate single-length distribution reproduces Eq. 4.
/// let uniform = MixedLengthModel::new(vec![DurationClass { weight: 1.0, duration: 3.0 }])?;
/// assert!((uniform.p_success(h, t) - p_success(h, t)).abs() < 1e-12);
///
/// // A mix of short and long transactions at the same density collides
/// // differently than the equal-length assumption predicts.
/// let mixed = MixedLengthModel::new(vec![
///     DurationClass { weight: 0.9, duration: 1.0 },
///     DurationClass { weight: 0.1, duration: 19.0 },
/// ])?;
/// assert!(mixed.p_success(h, t) != p_success(h, t));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MixedLengthModel {
    classes: Vec<DurationClass>,
    mean_duration: f64,
}

impl MixedLengthModel {
    /// Creates a mixed-length model from duration classes.
    ///
    /// Weights are relative and normalized internally.
    ///
    /// # Errors
    ///
    /// Returns an error if the distribution is empty or contains
    /// non-positive weights or durations.
    pub fn new(classes: Vec<DurationClass>) -> Result<Self, LengthModelError> {
        if classes.is_empty() {
            return Err(LengthModelError::EmptyDistribution);
        }
        let mut total_weight = 0.0;
        for class in &classes {
            if !(class.weight.is_finite() && class.weight > 0.0) {
                return Err(LengthModelError::NonPositiveWeight(class.weight));
            }
            if !(class.duration.is_finite() && class.duration > 0.0) {
                return Err(LengthModelError::NonPositiveDuration(class.duration));
            }
            total_weight += class.weight;
        }
        let classes: Vec<DurationClass> = classes
            .into_iter()
            .map(|c| DurationClass {
                weight: c.weight / total_weight,
                duration: c.duration,
            })
            .collect();
        let mean_duration = classes.iter().map(|c| c.weight * c.duration).sum();
        Ok(MixedLengthModel {
            classes,
            mean_duration,
        })
    }

    /// The normalized duration classes.
    #[must_use]
    pub fn classes(&self) -> &[DurationClass] {
        &self.classes
    }

    /// The mean transaction duration `E[L]`.
    #[must_use]
    pub fn mean_duration(&self) -> f64 {
        self.mean_duration
    }

    /// Expected number of overlapping transactions seen by a tagged
    /// transaction of duration `duration` at density `density`.
    #[must_use]
    pub fn expected_overlaps(&self, duration: f64, density: Density) -> f64 {
        let lambda = (density.get() - 1) as f64 / self.mean_duration;
        lambda * (duration + self.mean_duration)
    }

    /// Marginal transaction success probability at identifier width `id`
    /// and density `density`.
    #[must_use]
    pub fn p_success(&self, id: IdBits, density: Density) -> f64 {
        let survival = 1.0 - 1.0 / id.space_size();
        self.classes
            .iter()
            .map(|c| c.weight * survival.powf(self.expected_overlaps(c.duration, density)))
            .sum()
    }

    /// Marginal collision probability: `1 - P(success)`.
    #[must_use]
    pub fn p_collision(&self, id: IdBits, density: Density) -> f64 {
        1.0 - self.p_success(id, density)
    }

    /// AFF efficiency (Eq. 3) under the mixed-length success probability.
    #[must_use]
    pub fn efficiency(&self, data: DataBits, id: IdBits, density: Density) -> Efficiency {
        let d = data.get() as f64;
        let h = id.get() as f64;
        Efficiency::new(d / (d + h) * self.p_success(id, density))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efficiency::p_success as eq4_p_success;

    fn h(bits: u8) -> IdBits {
        IdBits::new(bits).unwrap()
    }
    fn t(density: u64) -> Density {
        Density::new(density).unwrap()
    }
    fn class(weight: f64, duration: f64) -> DurationClass {
        DurationClass { weight, duration }
    }

    #[test]
    fn rejects_empty_distribution() {
        assert_eq!(
            MixedLengthModel::new(vec![]).unwrap_err(),
            LengthModelError::EmptyDistribution
        );
    }

    #[test]
    fn rejects_bad_weights_and_durations() {
        assert!(matches!(
            MixedLengthModel::new(vec![class(0.0, 1.0)]),
            Err(LengthModelError::NonPositiveWeight(_))
        ));
        assert!(matches!(
            MixedLengthModel::new(vec![class(1.0, -1.0)]),
            Err(LengthModelError::NonPositiveDuration(_))
        ));
        assert!(matches!(
            MixedLengthModel::new(vec![class(f64::NAN, 1.0)]),
            Err(LengthModelError::NonPositiveWeight(_))
        ));
    }

    #[test]
    fn weights_are_normalized() {
        let m = MixedLengthModel::new(vec![class(2.0, 1.0), class(6.0, 2.0)]).unwrap();
        let total: f64 = m.classes().iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((m.classes()[0].weight - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mean_duration_is_weighted_average() {
        let m = MixedLengthModel::new(vec![class(1.0, 2.0), class(1.0, 4.0)]).unwrap();
        assert!((m.mean_duration() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_class_reduces_to_eq4() {
        // The generalized model must agree with Eq. 4 when all
        // transactions have equal length, for any length scale.
        for duration in [0.5, 1.0, 42.0] {
            let m = MixedLengthModel::new(vec![class(1.0, duration)]).unwrap();
            for density in [1u64, 2, 5, 16] {
                let got = m.p_success(h(8), t(density));
                let want = eq4_p_success(h(8), t(density));
                assert!(
                    (got - want).abs() < 1e-12,
                    "duration={duration} T={density}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn equal_length_overlap_count_matches_paper() {
        let m = MixedLengthModel::new(vec![class(1.0, 7.0)]).unwrap();
        assert!((m.expected_overlaps(7.0, t(5)) - 8.0).abs() < 1e-12); // 2(T-1)
    }

    #[test]
    fn long_transactions_collide_more_than_short() {
        let m = MixedLengthModel::new(vec![class(0.5, 1.0), class(0.5, 10.0)]).unwrap();
        let short = m.expected_overlaps(1.0, t(5));
        let long = m.expected_overlaps(10.0, t(5));
        assert!(long > short);
    }

    #[test]
    fn no_contention_is_always_success() {
        let m = MixedLengthModel::new(vec![class(0.3, 1.0), class(0.7, 9.0)]).unwrap();
        assert_eq!(m.p_success(h(4), t(1)), 1.0);
    }

    #[test]
    fn p_collision_complements_success() {
        let m = MixedLengthModel::new(vec![class(0.5, 1.0), class(0.5, 3.0)]).unwrap();
        let sum = m.p_success(h(6), t(5)) + m.p_collision(h(6), t(5));
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_mix_differs_from_equal_length_assumption() {
        // The Section 4.1 caveat quantified: same T, different collision
        // characteristics.
        let m = MixedLengthModel::new(vec![class(0.9, 1.0), class(0.1, 19.0)]).unwrap();
        let mixed = m.p_success(h(8), t(5));
        let uniform = eq4_p_success(h(8), t(5));
        assert!((mixed - uniform).abs() > 1e-6);
    }

    #[test]
    fn efficiency_uses_marginal_success() {
        let d = DataBits::new(16).unwrap();
        let m = MixedLengthModel::new(vec![class(1.0, 1.0)]).unwrap();
        let e = m.efficiency(d, h(9), t(16));
        let base = crate::efficiency::aff_efficiency(d, h(9), t(16));
        assert!((e.get() - base.get()).abs() < 1e-12);
    }
}
