//! Series generators that regenerate the paper's analytic figures.
//!
//! Each function returns plain data (vectors of points) so the experiment
//! harness in `retri-bench` can print, serialize, or plot them. Figures:
//!
//! - **Figure 1** — efficiency vs. identifier bits, `D = 16`, AFF curves
//!   for `T ∈ {16, 256, 65536}` plus static 16/32-bit flat lines:
//!   [`efficiency_vs_id_bits`] + [`static_line`].
//! - **Figure 2** — same with `D = 128`.
//! - **Figure 3** — efficiency vs. load (`T`) at fixed widths, showing
//!   static allocation's hard saturation versus AFF's graceful
//!   degradation: [`efficiency_vs_load`] + [`static_vs_load`].

use crate::efficiency::{aff_efficiency, static_efficiency, Efficiency};
use crate::params::{DataBits, Density, IdBits};

/// One point of an efficiency-vs-identifier-width curve.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WidthPoint {
    /// Identifier width `H` (the x-axis of Figures 1–2).
    pub id_bits: IdBits,
    /// Efficiency at that width.
    pub efficiency: Efficiency,
}

/// One point of an efficiency-vs-load curve.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LoadPoint {
    /// Transaction density `T` (the x-axis of Figure 3).
    pub density: Density,
    /// Efficiency at that load, or `None` where the scheme is undefined
    /// (a static address space with fewer addresses than transactions).
    pub efficiency: Option<Efficiency>,
}

/// AFF efficiency as a function of identifier width (an AFF curve of
/// Figures 1–2).
///
/// Sweeps `H` over `widths` for fixed data size and density.
///
/// # Examples
///
/// ```
/// use retri_model::sweep::efficiency_vs_id_bits;
/// use retri_model::{DataBits, Density, IdBits};
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// let curve = efficiency_vs_id_bits(
///     DataBits::new(16)?,
///     Density::new(16)?,
///     IdBits::all().take(32),
/// );
/// // The curve rises to a peak and then declines (Section 4.2).
/// let peak = curve
///     .iter()
///     .max_by(|a, b| a.efficiency.total_cmp(&b.efficiency))
///     .unwrap();
/// assert_eq!(peak.id_bits.get(), 9);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn efficiency_vs_id_bits(
    data: DataBits,
    density: Density,
    widths: impl IntoIterator<Item = IdBits>,
) -> Vec<WidthPoint> {
    widths
        .into_iter()
        .map(|id_bits| WidthPoint {
            id_bits,
            efficiency: aff_efficiency(data, id_bits, density),
        })
        .collect()
}

/// The flat line of a static allocation in Figures 1–2: constant
/// efficiency regardless of the x-axis position.
///
/// Returns one [`WidthPoint`] per swept width, all carrying the same
/// efficiency `D / (D + address)`, so the series plots directly alongside
/// the AFF curves.
#[must_use]
pub fn static_line(
    data: DataBits,
    address: IdBits,
    widths: impl IntoIterator<Item = IdBits>,
) -> Vec<WidthPoint> {
    let e = static_efficiency(data, address);
    widths
        .into_iter()
        .map(|id_bits| WidthPoint {
            id_bits,
            efficiency: e,
        })
        .collect()
}

/// AFF efficiency as a function of load (an AFF curve of Figure 3).
///
/// Sweeps the transaction density for a fixed identifier width. AFF is
/// defined at every load: efficiency degrades smoothly as collisions
/// increase.
#[must_use]
pub fn efficiency_vs_load(
    data: DataBits,
    id: IdBits,
    loads: impl IntoIterator<Item = Density>,
) -> Vec<LoadPoint> {
    loads
        .into_iter()
        .map(|density| LoadPoint {
            density,
            efficiency: Some(aff_efficiency(data, id, density)),
        })
        .collect()
}

/// Static allocation as a function of load (the step line of Figure 3).
///
/// Static allocation has constant efficiency while the address space can
/// name every concurrent transaction (`T <= 2^H`) and is **undefined**
/// beyond that point — the paper plots nothing there, and we return
/// `None`.
///
/// # Examples
///
/// ```
/// use retri_model::sweep::static_vs_load;
/// use retri_model::{DataBits, Density, IdBits};
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// let line = static_vs_load(
///     DataBits::new(16)?,
///     IdBits::new(4)?,
///     (1..=32).map(|t| Density::new(t).unwrap()),
/// );
/// assert!(line[15].efficiency.is_some()); // T = 16 = 2^4 still fits
/// assert!(line[16].efficiency.is_none()); // T = 17 exhausts the space
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn static_vs_load(
    data: DataBits,
    address: IdBits,
    loads: impl IntoIterator<Item = Density>,
) -> Vec<LoadPoint> {
    let e = static_efficiency(data, address);
    loads
        .into_iter()
        .map(|density| LoadPoint {
            density,
            efficiency: if u128::from(density.get()) <= address.space_len() {
                Some(e)
            } else {
                None
            },
        })
        .collect()
}

/// The best-efficiency point of a load sweep, skipping out-of-domain
/// cells.
///
/// Out-of-domain cells (`efficiency == None`, e.g. a static address
/// space with fewer addresses than transactions) rank below every
/// defined efficiency via a `NEG_INFINITY` sentinel under
/// [`f64::total_cmp`]; the NaN-unsafe `partial_cmp(..).unwrap()` idiom
/// this replaces panicked as soon as a sweep contained such a cell.
/// Returns `None` only when every cell is out of domain.
#[must_use]
pub fn best_defined(points: &[LoadPoint]) -> Option<&LoadPoint> {
    let key = |p: &LoadPoint| p.efficiency.map_or(f64::NEG_INFINITY, Efficiency::get);
    points
        .iter()
        .max_by(|a, b| key(a).total_cmp(&key(b)))
        .filter(|p| p.efficiency.is_some())
}

/// Convenience: geometrically spaced densities `1, 2, 4, ...` up to and
/// including `max` (useful for log-scale load sweeps like Figure 3).
#[must_use]
pub fn geometric_loads(max: u64) -> Vec<Density> {
    let mut loads = Vec::new();
    let mut t = 1u64;
    while t <= max {
        loads.push(Density::new(t).expect("nonzero"));
        match t.checked_mul(2) {
            Some(next) => t = next,
            None => break,
        }
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(bits: u32) -> DataBits {
        DataBits::new(bits).unwrap()
    }
    fn h(bits: u8) -> IdBits {
        IdBits::new(bits).unwrap()
    }
    fn t(density: u64) -> Density {
        Density::new(density).unwrap()
    }

    #[test]
    fn width_sweep_covers_requested_widths_in_order() {
        let curve = efficiency_vs_id_bits(d(16), t(16), IdBits::all().take(32));
        assert_eq!(curve.len(), 32);
        for (i, p) in curve.iter().enumerate() {
            assert_eq!(p.id_bits.get() as usize, i + 1);
        }
    }

    #[test]
    fn width_sweep_is_unimodal_for_paper_scenarios() {
        // Rises to the peak, falls after it — the "consistent shape"
        // described in Section 4.2.
        for density in [16u64, 256, 65536] {
            let curve = efficiency_vs_id_bits(d(16), t(density), IdBits::all());
            let peak = curve
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.efficiency.total_cmp(&b.1.efficiency))
                .map(|(i, _)| i)
                .unwrap();
            for w in curve.windows(2).take(peak) {
                assert!(w[0].efficiency <= w[1].efficiency);
            }
            for w in curve.windows(2).skip(peak) {
                assert!(w[0].efficiency >= w[1].efficiency);
            }
        }
    }

    #[test]
    fn static_line_is_flat() {
        let line = static_line(d(16), h(16), IdBits::all().take(32));
        assert!(line
            .iter()
            .all(|p| (p.efficiency.get() - 0.5).abs() < 1e-12));
    }

    #[test]
    fn load_sweep_is_monotone_decreasing() {
        let loads = geometric_loads(1 << 20);
        let curve = efficiency_vs_load(d(16), h(9), loads);
        for w in curve.windows(2) {
            assert!(w[0].efficiency.unwrap() >= w[1].efficiency.unwrap());
        }
    }

    #[test]
    fn static_load_line_cuts_off_at_space_exhaustion() {
        let line = static_vs_load(d(16), h(3), (1..=10).map(t));
        for p in &line {
            if p.density.get() <= 8 {
                assert!(p.efficiency.is_some());
            } else {
                assert!(p.efficiency.is_none());
            }
        }
    }

    #[test]
    fn geometric_loads_doubles_up_to_max() {
        assert_eq!(
            geometric_loads(16)
                .iter()
                .map(|x| x.get())
                .collect::<Vec<_>>(),
            vec![1, 2, 4, 8, 16]
        );
        // max not itself a power of two: stops below it.
        assert_eq!(
            geometric_loads(20)
                .iter()
                .map(|x| x.get())
                .collect::<Vec<_>>(),
            vec![1, 2, 4, 8, 16]
        );
    }

    #[test]
    fn ranking_a_sweep_with_out_of_domain_cells_does_not_panic() {
        // Regression: Figure-3 static sweeps carry None cells past
        // address-space exhaustion; ranking them with
        // partial_cmp(..).unwrap() on an undefined sentinel panicked.
        let line = static_vs_load(d(16), h(3), (1..=10).map(t));
        assert!(line.iter().any(|p| p.efficiency.is_none()));
        let best = best_defined(&line).expect("defined cells exist");
        assert!(best.efficiency.is_some());
        assert!(best.density.get() <= 8, "best cell must be in-domain");
        // A sweep that is out of domain everywhere yields no best point
        // instead of panicking.
        let exhausted = static_vs_load(d(16), h(1), (3..=4).map(t));
        assert!(best_defined(&exhausted).is_none());
    }

    #[test]
    fn figure3_crossover_visible_in_series() {
        // At low load AFF (well-sized) beats a saturating static space; at
        // the point the static space is exhausted AFF still works.
        let loads: Vec<Density> = (1..=40).map(t).collect();
        let aff = efficiency_vs_load(d(16), h(9), loads.clone());
        let stat = static_vs_load(d(16), h(5), loads);
        let exhausted = stat.iter().filter(|p| p.efficiency.is_none()).count();
        assert_eq!(exhausted, 40 - 32);
        // AFF defined everywhere.
        assert!(aff.iter().all(|p| p.efficiency.is_some()));
    }
}
