//! Analytic model of RETRI / Address-Free Fragmentation efficiency.
//!
//! This crate implements Section 4 of *"Random, Ephemeral Transaction
//! Identifiers in Dynamic Sensor Networks"* (Elson & Estrin, ICDCS 2001):
//! a closed-form model predicting the energy efficiency of transmitting
//! data tagged with **short, random, probabilistically-unique transaction
//! identifiers** compared to transmitting the same data tagged with
//! statically allocated, guaranteed-unique addresses.
//!
//! # The model in one paragraph
//!
//! Every transaction carries `D` data bits and an `H`-bit identifier
//! header. Efficiency is the cost-benefit ratio of radio energy
//! (paper Eq. 1):
//!
//! ```text
//! E = useful bits received / total bits transmitted
//! ```
//!
//! With static, guaranteed-unique addresses no transaction is ever lost to
//! an identifier collision, so `E_static = D / (D + H)` (Eq. 2). With
//! random ephemeral identifiers a transaction succeeds only if its
//! identifier is unique among the `T` concurrent transactions visible at
//! the same point in the network, giving `E_aff = D * P(success) / (D +
//! H)` (Eq. 3) where, for uniform selection from a pool of `2^H`
//! identifiers, `P(success) = (1 - 2^-H)^(2(T-1))` (Eq. 4).
//!
//! # Quick start
//!
//! ```
//! use retri_model::{AffModel, DataBits, Density, IdBits};
//!
//! # fn main() -> Result<(), retri_model::ModelError> {
//! // A sensor periodically reports 16 bits of data; any point of the
//! // network sees ~16 concurrent transactions.
//! let model = AffModel::new(DataBits::new(16)?, Density::new(16)?);
//!
//! // The paper: "AFF works optimally with only 9 identifier bits in a
//! // network where there are an average of 16 simultaneous transactions".
//! let best = model.optimal_id_bits();
//! assert_eq!(best.get(), 9);
//!
//! // ... which beats both 16-bit and 32-bit static allocation.
//! let e_aff = model.efficiency(best);
//! assert!(e_aff > retri_model::static_efficiency(DataBits::new(16)?, IdBits::new(16)?));
//! assert!(e_aff > retri_model::static_efficiency(DataBits::new(16)?, IdBits::new(32)?));
//! # Ok(())
//! # }
//! ```
//!
//! # Crate layout
//!
//! - [`params`] — validated parameter newtypes ([`IdBits`], [`DataBits`],
//!   [`Density`]).
//! - [`efficiency`] — the core equations (Eqs. 1–4) and [`AffModel`].
//! - [`optimal`] — optimal identifier sizing, break-even and crossover
//!   analysis ([`optimal::optimal_id_bits`], [`optimal::crossover_density`]).
//! - [`sweep`] — series generators that regenerate the paper's Figures
//!   1–3 point-by-point.
//! - [`listening`] — extension: a model of the *listening* heuristic
//!   (Section 3.2 / future work in Section 8).
//! - [`lengths`] — extension: non-uniform transaction lengths (relaxes the
//!   equal-length assumption called out in Section 4.1).
//! - [`exact`] — extension: exact snapshot/birthday collision
//!   probabilities that bracket the Eq. 4 approximation.
//! - [`codebook`] — extension: amortized savings and conflict odds for
//!   the Section 6 name-compression codebooks.
//! - [`lifetime`] — extension: converts Eq. 1 efficiency into node
//!   lifetime under the Section 4.4 linear radio-energy model.
//! - [`continuous`] — real-valued identifier widths, used to study the
//!   shape of the efficiency curve analytically.
//! - [`dfa`] — extension: Dynamic-Frame Aloha closed forms (optimal
//!   frame setting `L* = N` and throughput predictions, after Barletta,
//!   Borgonovo & Cesana) backing the netsim adaptive MAC.
//! - [`stats`] — small summary-statistics helpers shared by the
//!   experiment harness (means, standard deviations, model-vs-measured
//!   agreement checks).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codebook;
pub mod continuous;
pub mod dfa;
pub mod efficiency;
pub mod exact;
pub mod lengths;
pub mod lifetime;
pub mod listening;
pub mod optimal;
pub mod params;
pub mod stats;
pub mod sweep;

pub use efficiency::{
    aff_efficiency, p_collision, p_success, static_efficiency, AffModel, Efficiency,
};
pub use optimal::{crossover_density, optimal_id_bits, OptimalPoint};
pub use params::{DataBits, Density, IdBits, ModelError};
