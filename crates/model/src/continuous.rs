//! Real-valued identifier widths and the shape of the efficiency curve.
//!
//! Identifier widths are whole bits on the wire, but treating `H` as a
//! real number exposes the structure of the optimum in Section 4.2: the
//! peak of `E(h) = D/(D+h) · (1 - 2^-h)^(2(T-1))` balances header
//! amortization against collision probability. This module evaluates the
//! continuous curve and locates its maximum, which brackets the integer
//! optimum found by [`crate::optimal::optimal_id_bits`].

use crate::params::{DataBits, Density};

/// Continuous-width AFF efficiency `E(h)` for real `h > 0`.
///
/// Matches [`crate::aff_efficiency`] exactly at integer widths.
///
/// # Examples
///
/// ```
/// use retri_model::continuous::efficiency_at;
/// use retri_model::{aff_efficiency, DataBits, Density, IdBits};
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// let d = DataBits::new(16)?;
/// let t = Density::new(16)?;
/// let discrete = aff_efficiency(d, IdBits::new(9)?, t).get();
/// let continuous = efficiency_at(d, t, 9.0);
/// assert!((discrete - continuous).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn efficiency_at(data: DataBits, density: Density, h: f64) -> f64 {
    assert!(h > 0.0 && h.is_finite(), "width must be positive, got {h}");
    let d = data.get() as f64;
    let p = (1.0 - (-h).exp2()).powf(density.contending_overlaps() as f64);
    d / (d + h) * p
}

/// Locates the real-valued width maximizing `E(h)` via golden-section
/// search on `[0.01, 64]`.
///
/// The efficiency curve is unimodal on this interval for every parameter
/// combination the model admits (it rises while collision suppression
/// dominates and falls once header amortization dominates), which is the
/// precondition golden-section search needs.
///
/// Returns `(h_star, e_star)`.
///
/// # Examples
///
/// ```
/// use retri_model::continuous::optimal_width;
/// use retri_model::{optimal_id_bits, DataBits, Density};
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// let d = DataBits::new(16)?;
/// let t = Density::new(16)?;
/// let (h_star, _) = optimal_width(d, t);
/// let integer = optimal_id_bits(d, t).id_bits.get() as f64;
/// // The integer optimum lies within one bit of the continuous peak.
/// assert!((h_star - integer).abs() <= 1.0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn optimal_width(data: DataBits, density: Density) -> (f64, f64) {
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut lo = 0.01f64;
    let mut hi = 64.0f64;
    let mut c = hi - (hi - lo) * INV_PHI;
    let mut d_pt = lo + (hi - lo) * INV_PHI;
    let mut fc = efficiency_at(data, density, c);
    let mut fd = efficiency_at(data, density, d_pt);
    for _ in 0..200 {
        if fc > fd {
            hi = d_pt;
            d_pt = c;
            fd = fc;
            c = hi - (hi - lo) * INV_PHI;
            fc = efficiency_at(data, density, c);
        } else {
            lo = c;
            c = d_pt;
            fc = fd;
            d_pt = lo + (hi - lo) * INV_PHI;
            fd = efficiency_at(data, density, d_pt);
        }
        if hi - lo < 1e-10 {
            break;
        }
    }
    let h_star = (lo + hi) / 2.0;
    (h_star, efficiency_at(data, density, h_star))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efficiency::aff_efficiency;
    use crate::optimal::optimal_id_bits;
    use crate::params::IdBits;

    fn d(bits: u32) -> DataBits {
        DataBits::new(bits).unwrap()
    }
    fn t(density: u64) -> Density {
        Density::new(density).unwrap()
    }

    #[test]
    fn continuous_matches_discrete_at_integers() {
        for bits in 1..=32u8 {
            let discrete = aff_efficiency(d(16), IdBits::new(bits).unwrap(), t(16)).get();
            let continuous = efficiency_at(d(16), t(16), bits as f64);
            assert!((discrete - continuous).abs() < 1e-12, "H={bits}");
        }
    }

    #[test]
    fn continuous_peak_brackets_integer_optimum() {
        for (data, density) in [
            (16u32, 16u64),
            (16, 256),
            (128, 16),
            (128, 256),
            (16, 65536),
        ] {
            let (h_star, e_star) = optimal_width(d(data), t(density));
            let integer = optimal_id_bits(d(data), t(density));
            assert!(
                (h_star - integer.id_bits.get() as f64).abs() <= 1.0,
                "D={data} T={density}: continuous {h_star} vs integer {}",
                integer.id_bits
            );
            // The continuous peak can only be at least as high as the
            // best integer point.
            assert!(e_star >= integer.efficiency.get() - 1e-12);
        }
    }

    #[test]
    fn peak_efficiency_bounded_by_no_collision_envelope() {
        let (h_star, e_star) = optimal_width(d(16), t(16));
        // E(h) <= D/(D+h) everywhere.
        assert!(e_star <= 16.0 / (16.0 + h_star) + 1e-12);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn rejects_nonpositive_width() {
        let _ = efficiency_at(d(16), t(16), 0.0);
    }

    #[test]
    fn golden_section_converges_tightly() {
        let (h1, _) = optimal_width(d(16), t(16));
        let (h2, _) = optimal_width(d(16), t(16));
        assert_eq!(h1, h2, "search must be deterministic");
        // Perturbing by a hair around the optimum must not do better.
        let e_star = efficiency_at(d(16), t(16), h1);
        for delta in [-0.01, 0.01] {
            assert!(efficiency_at(d(16), t(16), h1 + delta) <= e_star + 1e-9);
        }
    }
}
