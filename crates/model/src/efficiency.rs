//! The core efficiency equations (paper Eqs. 1–4).
//!
//! Terminology follows the paper: `D` data bits, `H` identifier bits, `T`
//! transaction density, `E` efficiency (useful bits received per bit
//! transmitted).

use core::fmt;

use crate::params::{DataBits, Density, IdBits};

/// An efficiency value in `[0, 1]`: useful bits received per bit
/// transmitted (paper Eq. 1).
///
/// Wrapping the raw `f64` keeps efficiencies from being confused with
/// probabilities at call sites and centralizes the range invariant.
///
/// # Examples
///
/// ```
/// use retri_model::{static_efficiency, DataBits, IdBits};
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// let e = static_efficiency(DataBits::new(16)?, IdBits::new(16)?);
/// assert_eq!(e.get(), 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct Efficiency(f64);

impl Efficiency {
    /// Creates an efficiency from a raw ratio.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not within `[0, 1]` or is NaN. Efficiencies
    /// are only produced internally from the model equations, which cannot
    /// leave that range; the assertion guards against arithmetic bugs.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&value),
            "efficiency {value} outside [0, 1]"
        );
        Efficiency(value)
    }

    /// Returns the efficiency as a ratio in `[0, 1]`.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Returns the efficiency as a percentage in `[0, 100]`.
    #[must_use]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Total ordering on efficiencies via [`f64::total_cmp`].
    ///
    /// `Efficiency` values themselves cannot be NaN ([`Efficiency::new`]
    /// rejects it), but call sites that rank efficiencies often mix in
    /// sentinel `f64`s (e.g. `NEG_INFINITY` or NaN for out-of-domain
    /// sweep cells), where `partial_cmp(..).unwrap()` panics. Use this
    /// everywhere an ordering is needed.
    #[must_use]
    pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for Efficiency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}%", self.as_percent())
    }
}

/// Efficiency of static, guaranteed-unique allocation (paper Eq. 2).
///
/// `E_static = D / (D + H)`. No transaction is ever lost to identifier
/// collisions, so efficiency is exactly the data fraction of the bits
/// on air.
///
/// # Examples
///
/// ```
/// use retri_model::{static_efficiency, DataBits, IdBits};
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// // The two flat lines of Figure 1: 16-bit data under 16- and 32-bit
/// // static addresses.
/// let d = DataBits::new(16)?;
/// assert_eq!(static_efficiency(d, IdBits::new(16)?).get(), 0.5);
/// let e32 = static_efficiency(d, IdBits::new(32)?);
/// assert!((e32.get() - 1.0 / 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn static_efficiency(data: DataBits, header: IdBits) -> Efficiency {
    let d = data.get() as f64;
    let h = header.get() as f64;
    Efficiency::new(d / (d + h))
}

/// Probability that a transaction survives identifier collisions
/// (paper Eq. 4).
///
/// `P(success) = (1 - 2^-H)^(2(T-1))` under the most pessimistic
/// assumption: every node draws identifiers uniformly at random with no
/// learned state, so each of the up to `2(T-1)` overlapping transactions
/// independently collides with probability `2^-H`.
///
/// This is a *lower bound* on the success probability achievable in
/// practice; the listening heuristic ([`crate::listening`]) does better.
///
/// # Examples
///
/// ```
/// use retri_model::{p_success, Density, IdBits};
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// // One lone transaction can never collide.
/// assert_eq!(p_success(IdBits::new(1)?, Density::new(1)?), 1.0);
///
/// // The Figure 4 testbed point: T=5 senders, 8-bit identifiers.
/// let p = p_success(IdBits::new(8)?, Density::new(5)?);
/// assert!((p - (1.0 - 1.0 / 256.0f64).powi(8)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn p_success(id: IdBits, density: Density) -> f64 {
    let per_overlap_survival = 1.0 - 1.0 / id.space_size();
    per_overlap_survival.powf(density.contending_overlaps() as f64)
}

/// Probability that a transaction is lost to an identifier collision:
/// `1 - P(success)`.
///
/// This is the quantity plotted in the paper's Figure 4 ("collision
/// rate").
///
/// # Examples
///
/// ```
/// use retri_model::{p_collision, p_success, Density, IdBits};
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// let h = IdBits::new(4)?;
/// let t = Density::new(5)?;
/// assert!((p_collision(h, t) + p_success(h, t) - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn p_collision(id: IdBits, density: Density) -> f64 {
    1.0 - p_success(id, density)
}

/// Efficiency of Address-Free Fragmentation (paper Eq. 3).
///
/// `E_aff = D × P(success) / (D + H)`: the bits of failed transactions
/// are spent but deliver nothing useful, so the data fraction is scaled
/// by the success probability of Eq. 4.
///
/// # Examples
///
/// ```
/// use retri_model::{aff_efficiency, static_efficiency, DataBits, Density, IdBits};
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// let d = DataBits::new(16)?;
/// // With a huge identifier space collisions vanish and AFF converges
/// // to the static formula for the same header size.
/// let aff = aff_efficiency(d, IdBits::new(48)?, Density::new(16)?);
/// let stat = static_efficiency(d, IdBits::new(48)?);
/// assert!((aff.get() - stat.get()).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn aff_efficiency(data: DataBits, id: IdBits, density: Density) -> Efficiency {
    let base = static_efficiency(data, id).get();
    Efficiency::new(base * p_success(id, density))
}

/// A fixed AFF design point: data size and transaction density.
///
/// Bundles the two scenario parameters of the model so the remaining
/// free variable — the identifier width — can be swept, optimized, or
/// compared against static allocation.
///
/// # Examples
///
/// ```
/// use retri_model::{AffModel, DataBits, Density, IdBits};
///
/// # fn main() -> Result<(), retri_model::ModelError> {
/// let model = AffModel::new(DataBits::new(16)?, Density::new(16)?);
/// let nine = IdBits::new(9)?;
/// assert!(model.efficiency(nine).get() > 0.6);
/// assert_eq!(model.optimal_id_bits(), nine);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AffModel {
    data: DataBits,
    density: Density,
}

impl AffModel {
    /// Creates a model for a given data size and transaction density.
    #[must_use]
    pub fn new(data: DataBits, density: Density) -> Self {
        AffModel { data, density }
    }

    /// Returns the data size `D`.
    #[must_use]
    pub fn data(&self) -> DataBits {
        self.data
    }

    /// Returns the transaction density `T`.
    #[must_use]
    pub fn density(&self) -> Density {
        self.density
    }

    /// AFF efficiency at identifier width `id` (Eq. 3).
    #[must_use]
    pub fn efficiency(&self, id: IdBits) -> Efficiency {
        aff_efficiency(self.data, id, self.density)
    }

    /// Success probability at identifier width `id` (Eq. 4).
    #[must_use]
    pub fn p_success(&self, id: IdBits) -> f64 {
        p_success(id, self.density)
    }

    /// Collision probability at identifier width `id`.
    #[must_use]
    pub fn p_collision(&self, id: IdBits) -> f64 {
        p_collision(id, self.density)
    }

    /// Efficiency of a static allocation with the same data size (Eq. 2).
    #[must_use]
    pub fn static_efficiency(&self, address: IdBits) -> Efficiency {
        static_efficiency(self.data, address)
    }

    /// The identifier width maximizing AFF efficiency for this scenario.
    ///
    /// Equivalent to [`crate::optimal::optimal_id_bits`]; provided as a
    /// method for discoverability.
    #[must_use]
    pub fn optimal_id_bits(&self) -> IdBits {
        crate::optimal::optimal_id_bits(self.data, self.density).id_bits
    }
}

impl fmt::Display for AffModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AFF model (D={}, {})", self.data.get(), self.density)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(bits: u32) -> DataBits {
        DataBits::new(bits).unwrap()
    }
    fn h(bits: u8) -> IdBits {
        IdBits::new(bits).unwrap()
    }
    fn t(density: u64) -> Density {
        Density::new(density).unwrap()
    }

    #[test]
    fn static_efficiency_matches_paper_flat_lines() {
        // Figure 1: 16-bit data under 16-bit static addresses -> 50%,
        // under 32-bit static addresses -> 33%.
        assert!((static_efficiency(d(16), h(16)).get() - 0.5).abs() < 1e-12);
        assert!((static_efficiency(d(16), h(32)).get() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn p_success_is_one_without_contention() {
        for bits in [1, 8, 16, 32, 64] {
            assert_eq!(p_success(h(bits), t(1)), 1.0);
        }
    }

    #[test]
    fn p_success_increases_with_id_bits() {
        let density = t(16);
        let mut last = 0.0;
        for bits in 1..=64 {
            let p = p_success(h(bits), density);
            assert!(p >= last, "P(success) must be nondecreasing in H");
            last = p;
        }
        assert!(last > 0.999999);
    }

    #[test]
    fn p_success_decreases_with_density() {
        let id = h(8);
        let mut last = 1.0;
        for density in [1u64, 2, 4, 8, 16, 256, 65536] {
            let p = p_success(id, t(density));
            assert!(p <= last, "P(success) must be nonincreasing in T");
            last = p;
        }
    }

    #[test]
    fn p_success_closed_form_spot_check() {
        // H=1, T=2: (1 - 1/2)^2 = 0.25
        assert!((p_success(h(1), t(2)) - 0.25).abs() < 1e-12);
        // H=2, T=3: (3/4)^4 = 0.31640625
        assert!((p_success(h(2), t(3)) - 0.31640625).abs() < 1e-12);
    }

    #[test]
    fn p_collision_complements_p_success() {
        for bits in [1u8, 4, 9, 16] {
            for density in [1u64, 5, 16, 256] {
                let sum = p_success(h(bits), t(density)) + p_collision(h(bits), t(density));
                assert!((sum - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn aff_efficiency_never_exceeds_static_at_same_width() {
        for bits in 1..=32 {
            let aff = aff_efficiency(d(16), h(bits), t(16));
            let stat = static_efficiency(d(16), h(bits));
            assert!(aff <= stat);
        }
    }

    #[test]
    fn aff_with_64_bit_ids_collides_never_in_practice() {
        let aff = aff_efficiency(d(16), h(64), t(65536));
        let stat = static_efficiency(d(16), h(64));
        assert!((aff.get() - stat.get()).abs() < 1e-9);
    }

    #[test]
    fn model_accessors_round_trip() {
        let m = AffModel::new(d(128), t(256));
        assert_eq!(m.data().get(), 128);
        assert_eq!(m.density().get(), 256);
        assert_eq!(m.to_string(), "AFF model (D=128, T=256)");
    }

    #[test]
    fn efficiency_display_is_percentage() {
        assert_eq!(Efficiency::new(0.5).to_string(), "50.00%");
        assert_eq!(Efficiency::new(0.5).as_percent(), 50.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn efficiency_rejects_out_of_range() {
        let _ = Efficiency::new(1.5);
    }

    #[test]
    fn paper_headline_nine_bits_beats_static() {
        // Section 4.2: "AFF works optimally with only 9 identifier bits in
        // a network where there are an average of 16 simultaneous
        // transactions ... more efficient than a static assignment that
        // might need 16 or 32 bits."
        let m = AffModel::new(d(16), t(16));
        let e9 = m.efficiency(h(9));
        assert!(e9 > static_efficiency(d(16), h(16)));
        assert!(e9 > static_efficiency(d(16), h(32)));
    }

    #[test]
    fn extreme_case_no_room_for_aff() {
        // Section 4.2: with 64K concurrent transactions a 16-bit static
        // space is fully utilized and AFF cannot win at any width.
        let m = AffModel::new(d(16), t(65536));
        let static16 = static_efficiency(d(16), h(16));
        for bits in 1..=64 {
            assert!(m.efficiency(h(bits)) <= static16);
        }
    }
}
