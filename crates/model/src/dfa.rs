//! Extension: the optimal frame setting for Dynamic-Frame Aloha.
//!
//! Dynamic-Frame Aloha (DFA) divides time into frames of `L` slots; each
//! of the `N` backlogged nodes transmits in exactly one uniformly chosen
//! slot per frame, and a slot delivers iff exactly one node chose it.
//! Barletta, Borgonovo & Cesana (*"A formal proof of the optimal frame
//! setting for Dynamic-Frame Aloha with known population size"*,
//! PAPERS.md) prove the frame length maximizing per-slot throughput with
//! a known population is exactly `L* = N`.
//!
//! The derivation is elementary here because one frame is memoryless: a
//! given node succeeds iff the other `N - 1` nodes all avoid its slot,
//! so the expected number of successful slots per frame is
//! `N · (1 - 1/L)^(N-1)` and the per-slot throughput
//!
//! ```text
//! f(L) = (N / L) · (1 - 1/L)^(N-1)
//! ```
//!
//! Differentiating `ln f` gives `d/dL ln f = -1/L + (N-1)/(L(L-1))`,
//! which is positive for `L < N` and negative for `L > N`: the unique
//! integer maximum sits at `L = N`, where throughput approaches `1/e` as
//! `N` grows. The netsim DFA MAC sizes each frame from this rule — with
//! `N` either known or read from the (side-effect-free)
//! `DensityEstimator` — and the bench harness asserts the measured
//! throughput lands inside the Wilson interval of these predictions.

use core::fmt;

/// Closed-form predictions for one DFA operating point `(N, L)`.
///
/// Produced by [`predict`] / [`predict_optimal`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DfaPoint {
    /// Backlogged population `N`.
    pub population: u64,
    /// Frame length `L` in slots.
    pub frame_length: u64,
    /// Probability a given node's transmission succeeds in one frame:
    /// `(1 - 1/L)^(N-1)`.
    pub p_success: f64,
    /// Expected successful slots per frame: `N · p_success`.
    pub expected_successes: f64,
    /// Per-slot throughput `f(L) = expected_successes / L` — the
    /// efficiency `E` of the frame: the fraction of airtime slots that
    /// carry exactly one transmission.
    pub throughput: f64,
}

impl fmt::Display for DfaPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DFA N={} L={}: P(success)={:.4}, throughput {:.4}",
            self.population, self.frame_length, self.p_success, self.throughput
        )
    }
}

/// The frame length maximizing per-slot throughput for a known
/// population of `n` backlogged nodes: `L* = N` (Barletta et al.).
///
/// A population of zero has nothing to schedule; the minimum useful
/// frame is one slot, so the result is clamped to at least 1.
///
/// # Examples
///
/// ```
/// use retri_model::dfa::optimal_frame_length;
///
/// assert_eq!(optimal_frame_length(16), 16);
/// assert_eq!(optimal_frame_length(0), 1);
/// ```
#[must_use]
pub fn optimal_frame_length(n: u64) -> u64 {
    n.max(1)
}

/// Probability that one node's transmission succeeds in a frame of `l`
/// slots shared with `n - 1` other nodes: `(1 - 1/l)^(n-1)`.
///
/// Degenerate inputs are total: `n = 0` or `l = 0` yield 0 (nothing can
/// succeed in an empty frame; with no population the probability is
/// vacuous and reported as 0), and a lone node always succeeds.
#[must_use]
pub fn attempt_success_probability(n: u64, l: u64) -> f64 {
    if n == 0 || l == 0 {
        return 0.0;
    }
    if n == 1 {
        return 1.0;
    }
    if l == 1 {
        // Two or more nodes in a single slot always collide.
        return 0.0;
    }
    (1.0 - 1.0 / l as f64).powi((n - 1).min(i32::MAX as u64) as i32)
}

/// Expected number of successful slots in one frame: `n · (1-1/l)^(n-1)`.
#[must_use]
pub fn expected_successes(n: u64, l: u64) -> f64 {
    n as f64 * attempt_success_probability(n, l)
}

/// Per-slot throughput `f(l) = (n/l) · (1 - 1/l)^(n-1)` — the expected
/// fraction of the frame's slots that deliver.
#[must_use]
pub fn slot_throughput(n: u64, l: u64) -> f64 {
    if l == 0 {
        return 0.0;
    }
    expected_successes(n, l) / l as f64
}

/// Closed-form predictions at an explicit operating point `(n, l)`.
#[must_use]
pub fn predict(n: u64, l: u64) -> DfaPoint {
    DfaPoint {
        population: n,
        frame_length: l,
        p_success: attempt_success_probability(n, l),
        expected_successes: expected_successes(n, l),
        throughput: slot_throughput(n, l),
    }
}

/// Closed-form predictions at the optimal frame setting `L* = N`.
///
/// # Examples
///
/// ```
/// use retri_model::dfa::predict_optimal;
///
/// let p = predict_optimal(16);
/// assert_eq!(p.frame_length, 16);
/// // Optimal throughput approaches 1/e from above as N grows.
/// assert!(p.throughput > 1.0 / std::f64::consts::E);
/// assert!(p.throughput < 0.4);
/// ```
#[must_use]
pub fn predict_optimal(n: u64) -> DfaPoint {
    predict(n, optimal_frame_length(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_node_always_succeeds() {
        assert!((attempt_success_probability(1, 1) - 1.0).abs() < 1e-12);
        assert!((slot_throughput(1, 1) - 1.0).abs() < 1e-12);
        assert_eq!(optimal_frame_length(1), 1);
    }

    #[test]
    fn single_slot_frames_always_collide() {
        assert_eq!(attempt_success_probability(2, 1), 0.0);
        assert_eq!(slot_throughput(5, 1), 0.0);
    }

    #[test]
    fn degenerate_inputs_are_total() {
        assert_eq!(attempt_success_probability(0, 8), 0.0);
        assert_eq!(attempt_success_probability(8, 0), 0.0);
        assert_eq!(slot_throughput(8, 0), 0.0);
        assert_eq!(optimal_frame_length(0), 1);
    }

    #[test]
    fn pair_in_two_slots_matches_hand_count() {
        // Two nodes, two slots: 4 equally likely placements, 2 of which
        // separate them. Each node succeeds with probability 1/2 and
        // the expected successes are 1 of 2 slots.
        assert!((attempt_success_probability(2, 2) - 0.5).abs() < 1e-12);
        assert!((expected_successes(2, 2) - 1.0).abs() < 1e-12);
        assert!((slot_throughput(2, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn optimal_throughput_decreases_toward_inv_e() {
        let inv_e = 1.0 / std::f64::consts::E;
        let mut prev = f64::INFINITY;
        for n in 1..=256u64 {
            let f = predict_optimal(n).throughput;
            assert!(f > inv_e, "N={n}: {f} <= 1/e");
            assert!(f <= prev, "optimal throughput must be nonincreasing");
            prev = f;
        }
        assert!((predict_optimal(4096).throughput - inv_e).abs() < 1e-3);
    }

    #[test]
    fn prediction_fields_are_consistent() {
        let p = predict(12, 16);
        assert!((p.expected_successes - 12.0 * p.p_success).abs() < 1e-12);
        assert!((p.throughput - p.expected_successes / 16.0).abs() < 1e-12);
        assert_eq!(p.population, 12);
        assert_eq!(p.frame_length, 16);
    }

    #[test]
    fn display_reads_naturally() {
        let text = predict_optimal(8).to_string();
        assert!(text.contains("N=8"));
        assert!(text.contains("L=8"));
    }
}
