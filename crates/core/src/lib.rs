//! Random, Ephemeral Transaction Identifiers (RETRI).
//!
//! This crate implements the primary contribution of *"Random, Ephemeral
//! Transaction Identifiers in Dynamic Sensor Networks"* (Elson & Estrin,
//! ICDCS 2001): whenever a protocol needs a guaranteed-unique identifier
//! only to provide *continuity* among the packets of one transaction, a
//! short, randomly selected, **probabilistically unique** identifier can
//! be used instead. Identifier collisions are not resolved — they are
//! treated like any other loss, and picking a fresh identifier per
//! transaction keeps losses from persisting.
//!
//! # What lives here
//!
//! - [`id`] — [`TransactionId`] values and the [`IdentifierSpace`] they
//!   are drawn from (1–64 bits wide).
//! - [`select`] — identifier-selection policies: the pessimistic
//!   [`select::UniformSelector`] modeled by the paper's Eq. 4, and the
//!   [`select::ListeningSelector`] heuristic of Section 3.2 that avoids
//!   recently heard identifiers (including the paper's adaptive `2T`
//!   window via [`select::AdaptiveListeningSelector`]).
//! - [`permutation`] — structured selector families from the related
//!   work: the PERIDOT-style [`permutation::PermutationSelector`]
//!   (keyed pseudorandom permutation walk — collision-free within a
//!   window of `space` draws) and the deliberately weak
//!   [`permutation::SequentialSelector`] (the IPv4-ID taxonomy's
//!   predictable policy, the attack target of the adversarial harness).
//! - [`density`] — [`density::DensityEstimator`]: a node's running
//!   estimate of the transaction density `T` it observes, used to size
//!   adaptive listening windows.
//! - [`track`] — receiver-side [`track::TransactionTracker`]: transaction
//!   lifecycle bookkeeping and ground-truth collision detection (the
//!   instrumentation methodology of the paper's Section 5.1).
//! - [`codebook`] — ephemeral identifier-to-value codebooks (the
//!   attribute-based name-compression context of Section 6).
//! - [`seed`] — labeled seed-stream derivation, so one root seed can
//!   drive several independent RNG streams (simulation, fault
//!   injection, workloads) without cross-talk.
//!
//! # Quick start
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use retri::select::{IdSelector, ListeningSelector, UniformSelector};
//! use retri::IdentifierSpace;
//!
//! # fn main() -> Result<(), retri::ModelError> {
//! let space = IdentifierSpace::new(8)?; // 8-bit ephemeral identifiers
//! let mut rng = StdRng::seed_from_u64(7);
//!
//! // The pessimistic policy: pick uniformly, remember nothing.
//! let mut uniform = UniformSelector::new(space);
//! let id = uniform.select(&mut rng);
//! assert!(id.value() < 256);
//!
//! // The listening policy: avoid identifiers recently heard on the air.
//! let mut listener = ListeningSelector::new(space, 10);
//! listener.observe(id);
//! for _ in 0..1000 {
//!     assert_ne!(listener.select(&mut rng), id);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codebook;
pub mod density;
pub mod id;
pub mod permutation;
pub mod seed;
pub mod select;
pub mod track;

pub use id::{IdentifierSpace, TransactionId};
pub use retri_model::{DataBits, Density, IdBits, ModelError};
pub use select::IdSelector;
