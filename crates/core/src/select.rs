//! Identifier-selection policies.
//!
//! The paper analyzes the most pessimistic policy — every node picks
//! uniformly at random with no learned state ([`UniformSelector`], the
//! policy modeled by Eq. 4) — and implements one improvement:
//! *listening* (Section 3.2), where a node avoids identifiers it has
//! recently heard in use ([`ListeningSelector`]). The experiment in
//! Section 5.1 sizes the avoidance window adaptively as the `2T` most
//! recent transactions, with `T` estimated from observed concurrency
//! ([`AdaptiveListeningSelector`]).

use std::collections::{HashMap, VecDeque};

use rand::RngCore;

use crate::density::DensityEstimator;
use crate::id::{IdentifierSpace, TransactionId};

/// A policy for choosing the ephemeral identifier of a new transaction.
///
/// The trait is object-safe so protocol stacks can be configured with
/// `Box<dyn IdSelector>` at run time; generic call sites can still pass
/// any `&mut R where R: Rng` because `RngCore` is implemented for
/// mutable references.
pub trait IdSelector {
    /// The identifier space this selector draws from.
    fn space(&self) -> IdentifierSpace;

    /// Chooses an identifier for a new transaction.
    fn select(&mut self, rng: &mut dyn RngCore) -> TransactionId;

    /// Reports an identifier heard in use by another node.
    ///
    /// The default implementation ignores the report (stateless
    /// policies).
    fn observe(&mut self, id: TransactionId) {
        let _ = id;
    }
}

/// The pessimistic baseline: uniform selection, no learned state.
///
/// This is exactly the policy whose collision probability Eq. 4 bounds,
/// and the "random" series of the paper's Figure 4.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use retri::select::{IdSelector, UniformSelector};
/// use retri::IdentifierSpace;
///
/// # fn main() -> Result<(), retri::ModelError> {
/// let mut selector = UniformSelector::new(IdentifierSpace::new(8)?);
/// let mut rng = StdRng::seed_from_u64(3);
/// let id = selector.select(&mut rng);
/// assert!(selector.space().contains(id));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformSelector {
    space: IdentifierSpace,
}

impl UniformSelector {
    /// Creates a uniform selector over `space`.
    #[must_use]
    pub fn new(space: IdentifierSpace) -> Self {
        UniformSelector { space }
    }
}

impl IdSelector for UniformSelector {
    fn space(&self) -> IdentifierSpace {
        self.space
    }

    fn select(&mut self, rng: &mut dyn RngCore) -> TransactionId {
        self.space.sample(rng)
    }
}

/// The listening heuristic: avoid identifiers heard within a sliding
/// window of recent transactions.
///
/// The window holds the last `window` *observations* (duplicates
/// included, matching "the most recent 2T transactions" in Section 5.1).
/// Selection draws uniformly from the identifiers **not** currently in
/// the window.
///
/// Listening cannot be perfect: if every identifier in the space has
/// been heard recently — or the window is larger than the pool — the
/// node must still communicate, so selection falls back to a uniform
/// draw. The paper notes the same limitation ("listening is usually not
/// as helpful as making the size of the identifier pool larger").
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use retri::select::{IdSelector, ListeningSelector};
/// use retri::IdentifierSpace;
///
/// # fn main() -> Result<(), retri::ModelError> {
/// let space = IdentifierSpace::new(4)?;
/// let mut selector = ListeningSelector::new(space, 8);
/// let mut rng = StdRng::seed_from_u64(9);
///
/// let heard = space.id(5)?;
/// selector.observe(heard);
/// for _ in 0..100 {
///     assert_ne!(selector.select(&mut rng), heard);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ListeningSelector {
    space: IdentifierSpace,
    window: usize,
    recent: VecDeque<u64>,
    counts: HashMap<u64, u32>,
}

impl ListeningSelector {
    /// Creates a listening selector that avoids the last `window`
    /// observed identifiers.
    ///
    /// A window of zero disables avoidance (equivalent to
    /// [`UniformSelector`]).
    #[must_use]
    pub fn new(space: IdentifierSpace, window: usize) -> Self {
        ListeningSelector {
            space,
            window,
            recent: VecDeque::with_capacity(window),
            counts: HashMap::new(),
        }
    }

    /// The current window size, in observations.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Resizes the avoidance window, evicting the oldest observations if
    /// it shrinks.
    pub fn set_window(&mut self, window: usize) {
        self.window = window;
        self.evict_overflow();
    }

    /// Whether the selector is currently avoiding `id`.
    #[must_use]
    pub fn avoids(&self, id: TransactionId) -> bool {
        self.space.contains(id) && self.counts.contains_key(&id.value())
    }

    /// Number of *distinct* identifiers currently avoided.
    #[must_use]
    pub fn avoided_len(&self) -> usize {
        self.counts.len()
    }

    fn evict_overflow(&mut self) {
        while self.recent.len() > self.window {
            let old = self.recent.pop_front().expect("non-empty by loop guard");
            match self.counts.get_mut(&old) {
                Some(count) if *count > 1 => *count -= 1,
                _ => {
                    self.counts.remove(&old);
                }
            }
        }
    }

    /// Draws uniformly from the identifiers outside the avoidance set.
    ///
    /// Uses rejection sampling while the avoided fraction is small and
    /// falls back to explicit enumeration of the free identifiers when
    /// the pool is mostly covered (only possible for enumerable widths).
    fn select_avoiding(&self, rng: &mut dyn RngCore) -> TransactionId {
        let pool = self.space.len();
        let avoided = self.counts.len() as u128;
        if avoided >= pool {
            // Every identifier was recently heard; the node must still
            // transmit something.
            return self.space.sample(rng);
        }
        let mostly_covered = avoided.saturating_mul(2) >= pool;
        if mostly_covered && self.space.bits().get() <= 20 {
            let free: Vec<u64> = (0..pool as u64)
                .filter(|value| !self.counts.contains_key(value))
                .collect();
            let index = (rng.next_u64() % free.len() as u64) as usize;
            return self
                .space
                .id(free[index])
                .expect("enumerated values are in range");
        }
        // Free fraction is at least one half (or the space is too large
        // to enumerate, in which case the avoided fraction is negligible):
        // expected iterations are bounded by a small constant.
        loop {
            let candidate = self.space.sample(rng);
            if !self.counts.contains_key(&candidate.value()) {
                return candidate;
            }
        }
    }
}

impl IdSelector for ListeningSelector {
    fn space(&self) -> IdentifierSpace {
        self.space
    }

    fn select(&mut self, rng: &mut dyn RngCore) -> TransactionId {
        if self.window == 0 {
            self.space.sample(rng)
        } else {
            self.select_avoiding(rng)
        }
    }

    fn observe(&mut self, id: TransactionId) {
        if self.window == 0 || !self.space.contains(id) {
            return;
        }
        self.recent.push_back(id.value());
        *self.counts.entry(id.value()).or_insert(0) += 1;
        self.evict_overflow();
    }
}

/// Listening with the paper's adaptive window: avoid the identifiers of
/// the most recent `2·T̂` transactions, where `T̂` is this node's running
/// estimate of the transaction density it observes (Section 5.1).
///
/// Observations are timestamped so the density estimate reflects
/// *concurrency*, not merely history; use [`observe_at`] and
/// [`select_at`] from protocol code that knows the current time. The
/// plain [`IdSelector`] methods reuse the most recent timestamp.
///
/// [`observe_at`]: AdaptiveListeningSelector::observe_at
/// [`select_at`]: AdaptiveListeningSelector::select_at
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use retri::select::AdaptiveListeningSelector;
/// use retri::IdentifierSpace;
///
/// # fn main() -> Result<(), retri::ModelError> {
/// let space = IdentifierSpace::new(8)?;
/// // Transactions observed within the last 1000 time units count as
/// // concurrent.
/// let mut selector = AdaptiveListeningSelector::new(space, 1000);
/// let mut rng = StdRng::seed_from_u64(2);
///
/// // Hearing four concurrent peers pushes the window to ~2·5.
/// for (i, now) in (0u64..4).zip([10u64, 20, 30, 40]) {
///     selector.observe_at(space.id(i)?, now);
/// }
/// let id = selector.select_at(&mut rng, 50);
/// assert!(space.contains(id));
/// assert!(selector.window() >= 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveListeningSelector {
    inner: ListeningSelector,
    estimator: DensityEstimator,
    last_now: u64,
}

impl AdaptiveListeningSelector {
    /// Creates an adaptive listening selector.
    ///
    /// `concurrency_ttl` is how long (in the caller's time unit) after
    /// last being heard a transaction still counts as concurrent; it
    /// should be on the order of one transaction duration.
    #[must_use]
    pub fn new(space: IdentifierSpace, concurrency_ttl: u64) -> Self {
        AdaptiveListeningSelector {
            inner: ListeningSelector::new(space, 0),
            estimator: DensityEstimator::new(concurrency_ttl),
            last_now: 0,
        }
    }

    /// Reports an identifier heard at time `now`.
    pub fn observe_at(&mut self, id: TransactionId, now: u64) {
        self.last_now = self.last_now.max(now);
        self.estimator.observe(id.value(), now);
        // Resize *after* feeding the estimator so the window already
        // accounts for the newest observation. Density reads are pure,
        // so this applies no second smoothing step.
        self.resize_window(now);
        self.inner.observe(id);
    }

    /// Chooses an identifier for a transaction starting at time `now`.
    pub fn select_at(&mut self, rng: &mut dyn RngCore, now: u64) -> TransactionId {
        self.last_now = self.last_now.max(now);
        self.resize_window(now);
        self.inner.select(rng)
    }

    /// The current avoidance-window size (`≈ 2·T̂` observations).
    #[must_use]
    pub fn window(&self) -> usize {
        self.inner.window()
    }

    /// Whether the selector is currently avoiding `id`.
    #[must_use]
    pub fn avoids(&self, id: TransactionId) -> bool {
        self.inner.avoids(id)
    }

    /// Number of *distinct* identifiers currently avoided.
    #[must_use]
    pub fn avoided_len(&self) -> usize {
        self.inner.avoided_len()
    }

    /// This node's current density estimate `T̂` (includes itself).
    ///
    /// Pure: reading the estimate never changes it, nor the avoidance
    /// window the next [`select_at`](Self::select_at) uses.
    #[must_use]
    pub fn estimated_density(&self, now: u64) -> u64 {
        self.estimator.estimated_density(now).get()
    }

    fn window_target(&self, now: u64) -> usize {
        window_for_density(self.estimated_density(now))
    }

    fn resize_window(&mut self, now: u64) {
        let target = self.window_target(now);
        self.inner.set_window(target);
    }
}

/// The paper's `2T` window rule, saturating instead of wrapping for
/// adversarially large density estimates (`2 * u64::MAX` would wrap in
/// `u64` before the `usize` conversion could catch it).
#[must_use]
fn window_for_density(density: u64) -> usize {
    usize::try_from(density.saturating_mul(2)).unwrap_or(usize::MAX)
}

impl IdSelector for AdaptiveListeningSelector {
    fn space(&self) -> IdentifierSpace {
        self.inner.space()
    }

    fn select(&mut self, rng: &mut dyn RngCore) -> TransactionId {
        let now = self.last_now;
        self.select_at(rng, now)
    }

    fn observe(&mut self, id: TransactionId) {
        let now = self.last_now;
        self.observe_at(id, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space(bits: u8) -> IdentifierSpace {
        IdentifierSpace::new(bits).unwrap()
    }

    #[test]
    fn uniform_selector_draws_from_space() {
        let mut selector = UniformSelector::new(space(6));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let id = selector.select(&mut rng);
            assert!(id.value() < 64);
        }
    }

    #[test]
    fn uniform_selector_ignores_observations() {
        let s = space(4);
        let mut selector = UniformSelector::new(s);
        let heard = s.id(7).unwrap();
        selector.observe(heard);
        // Over many draws, 7 must still appear — nothing is avoided.
        let mut rng = StdRng::seed_from_u64(2);
        let saw_heard = (0..500).any(|_| selector.select(&mut rng) == heard);
        assert!(saw_heard);
    }

    #[test]
    fn listening_avoids_recent_ids() {
        let s = space(4);
        let mut selector = ListeningSelector::new(s, 8);
        for v in [1u64, 2, 3] {
            selector.observe(s.id(v).unwrap());
        }
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let picked = selector.select(&mut rng).value();
            assert!(![1, 2, 3].contains(&picked));
        }
    }

    #[test]
    fn listening_window_evicts_oldest() {
        let s = space(8);
        let mut selector = ListeningSelector::new(s, 2);
        selector.observe(s.id(10).unwrap());
        selector.observe(s.id(11).unwrap());
        assert!(selector.avoids(s.id(10).unwrap()));
        selector.observe(s.id(12).unwrap());
        assert!(!selector.avoids(s.id(10).unwrap()), "oldest must age out");
        assert!(selector.avoids(s.id(11).unwrap()));
        assert!(selector.avoids(s.id(12).unwrap()));
    }

    #[test]
    fn duplicate_observations_keep_id_avoided_until_all_age_out() {
        let s = space(8);
        let mut selector = ListeningSelector::new(s, 3);
        let id = s.id(42).unwrap();
        selector.observe(id);
        selector.observe(id);
        selector.observe(s.id(1).unwrap());
        // Window now [42, 42, 1]; one more evicts a single 42, but the
        // other occurrence keeps it avoided.
        selector.observe(s.id(2).unwrap());
        assert!(selector.avoids(id));
        selector.observe(s.id(3).unwrap());
        assert!(!selector.avoids(id));
    }

    #[test]
    fn zero_window_is_uniform() {
        let s = space(3);
        let mut selector = ListeningSelector::new(s, 0);
        selector.observe(s.id(5).unwrap());
        assert_eq!(selector.avoided_len(), 0);
        let mut rng = StdRng::seed_from_u64(4);
        let saw = (0..500).any(|_| selector.select(&mut rng).value() == 5);
        assert!(saw);
    }

    #[test]
    fn fully_covered_pool_falls_back_to_uniform() {
        let s = space(2); // only 4 identifiers
        let mut selector = ListeningSelector::new(s, 16);
        for v in 0..4u64 {
            selector.observe(s.id(v).unwrap());
        }
        assert_eq!(selector.avoided_len(), 4);
        let mut rng = StdRng::seed_from_u64(5);
        // Must still produce something in-range rather than hang.
        let id = selector.select(&mut rng);
        assert!(id.value() < 4);
    }

    #[test]
    fn mostly_covered_pool_uses_enumeration_and_stays_correct() {
        let s = space(3); // 8 identifiers
        let mut selector = ListeningSelector::new(s, 6);
        for v in 0..6u64 {
            selector.observe(s.id(v).unwrap());
        }
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let picked = selector.select(&mut rng).value();
            assert!(picked == 6 || picked == 7, "picked avoided id {picked}");
            seen.insert(picked);
        }
        assert_eq!(seen.len(), 2, "both free identifiers should be used");
    }

    #[test]
    fn shrinking_window_forgets() {
        let s = space(8);
        let mut selector = ListeningSelector::new(s, 4);
        for v in 0..4u64 {
            selector.observe(s.id(v).unwrap());
        }
        selector.set_window(1);
        assert_eq!(selector.avoided_len(), 1);
        assert!(selector.avoids(s.id(3).unwrap()));
    }

    #[test]
    fn observations_from_other_spaces_are_ignored() {
        let s = space(8);
        let other = space(9);
        let mut selector = ListeningSelector::new(s, 4);
        selector.observe(other.id(1).unwrap());
        assert_eq!(selector.avoided_len(), 0);
    }

    #[test]
    fn adaptive_window_tracks_density() {
        let s = space(8);
        let mut selector = AdaptiveListeningSelector::new(s, 100);
        // Five concurrent peers (plus self) within the ttl.
        for v in 0..5u64 {
            selector.observe_at(s.id(v).unwrap(), 10 + v);
        }
        // Estimate T ≥ 5 → window ≥ 10.
        assert!(selector.window() >= 10, "window = {}", selector.window());
        assert!(selector.estimated_density(20) >= 5);
    }

    #[test]
    fn adaptive_window_decays_when_network_goes_quiet() {
        let s = space(8);
        let mut selector = AdaptiveListeningSelector::new(s, 50);
        for v in 0..8u64 {
            selector.observe_at(s.id(v).unwrap(), v);
        }
        let busy = selector.window();
        let mut rng = StdRng::seed_from_u64(8);
        let _ = selector.select_at(&mut rng, 10_000); // long silence
        assert!(selector.window() < busy);
    }

    #[test]
    fn adaptive_selector_avoids_recent_under_trait_interface() {
        let s = space(6);
        let mut selector = AdaptiveListeningSelector::new(s, 1_000);
        let heard = s.id(33).unwrap();
        // Several observations close together establish density > 1 so
        // the window is nonzero.
        selector.observe_at(s.id(1).unwrap(), 1);
        selector.observe_at(heard, 2);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..300 {
            let got = IdSelector::select(&mut selector, &mut rng);
            assert_ne!(got, heard);
        }
    }

    #[test]
    fn density_reads_do_not_perturb_selection() {
        // Regression: `estimated_density` used to apply an EWMA step per
        // read, so merely *asking* changed the next window and thus the
        // next draw. Two identically-fed selectors must keep selecting
        // identically no matter how often one of them is queried.
        let s = space(8);
        let mut queried = AdaptiveListeningSelector::new(s, 100);
        let mut untouched = AdaptiveListeningSelector::new(s, 100);
        for v in 0..6u64 {
            queried.observe_at(s.id(v).unwrap(), v * 5);
            untouched.observe_at(s.id(v).unwrap(), v * 5);
        }
        let first = queried.estimated_density(40);
        for _ in 0..50 {
            assert_eq!(queried.estimated_density(40), first);
        }
        assert_eq!(untouched.estimated_density(40), first);
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        assert_eq!(
            queried.select_at(&mut rng_a, 40),
            untouched.select_at(&mut rng_b, 40)
        );
        assert_eq!(queried.window(), untouched.window());
    }

    #[test]
    fn window_rule_saturates_for_adversarial_density() {
        assert_eq!(window_for_density(0), 0);
        assert_eq!(window_for_density(5), 10);
        // 2 * (2^63) wraps to 0 in u64; the rule must saturate instead.
        assert_eq!(window_for_density(u64::MAX / 2 + 1), usize::MAX);
        assert_eq!(window_for_density(u64::MAX), usize::MAX);
        #[cfg(target_pointer_width = "64")]
        assert_eq!(window_for_density(u64::MAX / 2), usize::MAX - 1);
    }

    #[test]
    fn selectors_are_object_safe() {
        let s = space(5);
        let mut rng = StdRng::seed_from_u64(10);
        let mut selectors: Vec<Box<dyn IdSelector>> = vec![
            Box::new(UniformSelector::new(s)),
            Box::new(ListeningSelector::new(s, 4)),
            Box::new(AdaptiveListeningSelector::new(s, 100)),
        ];
        for selector in &mut selectors {
            let id = selector.select(&mut rng);
            assert!(s.contains(id));
            selector.observe(id);
        }
    }
}
