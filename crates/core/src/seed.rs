//! Deterministic seed-stream derivation.
//!
//! A reproducible experiment often needs *several* independent RNG
//! streams from one root seed — the simulator's main stream, the fault
//! channel, per-trial workloads — without any stream's draws moving
//! when another stream is enabled. This module gives every consumer the
//! same derivation: absorb a textual label into the root seed through
//! SplitMix64, one byte at a time.
//!
//! The derivation is identical to the benchmark harness's
//! `trial_seed` absorption step, and `retri-netsim` re-implements it
//! locally (label `"netsim.fault"`) to keep its dependency surface at
//! `rand` alone; a cross-crate test pins the two implementations
//! together.

/// Derives the seed of a named sub-stream from a root seed.
///
/// Distinct labels give statistically independent streams; the empty
/// label returns the root seed unchanged (the "main" stream).
///
/// # Examples
///
/// ```
/// use retri::seed::stream_seed;
///
/// let root = 42;
/// let faults = stream_seed(root, "netsim.fault");
/// assert_ne!(faults, root);
/// assert_eq!(faults, stream_seed(root, "netsim.fault"));
/// assert_ne!(faults, stream_seed(root, "netsim.other"));
/// ```
#[must_use]
pub fn stream_seed(root: u64, label: &str) -> u64 {
    let mut state = root;
    for &byte in label.as_bytes() {
        state ^= u64::from(byte);
        state = rand::splitmix64(&mut state);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_label_is_the_root_stream() {
        assert_eq!(stream_seed(7, ""), 7);
    }

    #[test]
    fn labels_separate_streams() {
        let root = 0xDEAD_BEEF;
        assert_ne!(stream_seed(root, "a"), stream_seed(root, "b"));
        assert_ne!(stream_seed(root, "ab"), stream_seed(root, "ba"));
        assert_ne!(stream_seed(root, "netsim.fault"), root);
    }

    #[test]
    fn roots_separate_streams() {
        assert_ne!(
            stream_seed(1, "netsim.fault"),
            stream_seed(2, "netsim.fault")
        );
    }

    #[test]
    fn derivation_is_pure() {
        assert_eq!(stream_seed(99, "x.y"), stream_seed(99, "x.y"));
    }
}
