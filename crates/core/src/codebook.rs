//! Ephemeral identifier-to-value codebooks.
//!
//! Section 6 of the paper describes *attribute-based name compression*:
//! long, frequently repeated attribute/value lists are replaced on the
//! air by a short code, with a codebook mapping codes back to the full
//! data. Traditionally codes are either large and guaranteed unique, or
//! small and kept conflict-free by an (energy-hungry) allocation
//! protocol. RETRI offers a third point: pick codes randomly from a
//! small space, accept rare conflicts, and refresh bindings so conflicts
//! never persist.
//!
//! The sender side ([`SenderCodebook`]) assigns codes to values it
//! transmits; the receiver side ([`ReceiverCodebook`]) learns bindings
//! from "definition" messages and resolves subsequent codes. A receiver
//! detects conflicts when a definition rebinds a live code to different
//! data — the application-level analogue of a checksum failure.

use std::collections::HashMap;
use std::hash::Hash;

use rand::RngCore;

use crate::id::{IdentifierSpace, TransactionId};
use crate::select::{IdSelector, ListeningSelector};

/// Outcome of learning a code definition at a receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LearnOutcome {
    /// The code was free and is now bound.
    Bound,
    /// The code was already bound to the same value; the binding's
    /// lifetime is refreshed.
    Refreshed,
    /// The code was live and bound to *different* data: an identifier
    /// conflict. The old binding is replaced (newest-wins, as losses are
    /// the norm) and the event is counted.
    Conflict,
}

/// Sender-side codebook: assigns short ephemeral codes to values.
///
/// Codes are selected through a [`ListeningSelector`] so a sender avoids
/// codes it has recently heard other nodes define.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use retri::codebook::SenderCodebook;
/// use retri::IdentifierSpace;
///
/// # fn main() -> Result<(), retri::ModelError> {
/// let space = IdentifierSpace::new(6)?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut book: SenderCodebook<String> = SenderCodebook::new(space, 16);
///
/// let code = book.encode("temperature=23C location=NE".to_string(), &mut rng);
/// // Re-encoding the same value reuses the code...
/// assert_eq!(book.encode("temperature=23C location=NE".to_string(), &mut rng), code);
/// // ...until the binding is explicitly retired.
/// book.retire(&"temperature=23C location=NE".to_string());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SenderCodebook<V> {
    selector: ListeningSelector,
    bindings: HashMap<V, TransactionId>,
}

impl<V: Eq + Hash + Clone> SenderCodebook<V> {
    /// Creates a sender codebook over `space`, avoiding the last
    /// `listen_window` codes heard from other nodes.
    #[must_use]
    pub fn new(space: IdentifierSpace, listen_window: usize) -> Self {
        SenderCodebook {
            selector: ListeningSelector::new(space, listen_window),
            bindings: HashMap::new(),
        }
    }

    /// The identifier space codes are drawn from.
    #[must_use]
    pub fn space(&self) -> IdentifierSpace {
        self.selector.space()
    }

    /// Number of live bindings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether the codebook has no bindings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Returns the code for `value`, assigning a fresh ephemeral code on
    /// first use.
    pub fn encode<R: RngCore>(&mut self, value: V, rng: &mut R) -> TransactionId {
        if let Some(&code) = self.bindings.get(&value) {
            return code;
        }
        let code = self.selector.select(rng);
        self.bindings.insert(value, code);
        code
    }

    /// Looks up the current code for `value` without assigning one.
    #[must_use]
    pub fn code_of(&self, value: &V) -> Option<TransactionId> {
        self.bindings.get(value).copied()
    }

    /// Drops the binding for `value`, so its next use gets a fresh code.
    ///
    /// Retiring bindings periodically is what makes the identifiers
    /// *ephemeral*: a conflict cannot persist beyond a binding lifetime.
    pub fn retire(&mut self, value: &V) -> Option<TransactionId> {
        self.bindings.remove(value)
    }

    /// Drops all bindings (e.g. on an epoch boundary).
    pub fn retire_all(&mut self) {
        self.bindings.clear();
    }

    /// Reports a code heard in a definition from another node, so this
    /// sender avoids it for future bindings.
    pub fn observe(&mut self, code: TransactionId) {
        self.selector.observe(code);
    }
}

#[derive(Debug, Clone)]
struct Binding<V> {
    value: V,
    bound_at: u64,
    last_used: u64,
}

/// Receiver-side codebook: learns code definitions and resolves codes.
///
/// Bindings expire `ttl` time units after last use, mirroring the
/// ephemeral, soft-state design of the rest of the system.
///
/// # Examples
///
/// ```
/// use retri::codebook::{LearnOutcome, ReceiverCodebook};
/// use retri::IdentifierSpace;
///
/// # fn main() -> Result<(), retri::ModelError> {
/// let space = IdentifierSpace::new(6)?;
/// let code = space.id(17)?;
/// let mut book: ReceiverCodebook<&str> = ReceiverCodebook::new(1_000);
///
/// assert_eq!(book.learn(code, "motion in NE quadrant", 0), LearnOutcome::Bound);
/// assert_eq!(book.resolve(code, 10), Some(&"motion in NE quadrant"));
///
/// // A different node defining the same live code is a conflict.
/// assert_eq!(book.learn(code, "vehicle count = 4", 20), LearnOutcome::Conflict);
/// assert_eq!(book.conflicts(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReceiverCodebook<V> {
    ttl: u64,
    bindings: HashMap<TransactionId, Binding<V>>,
    conflicts: u64,
}

impl<V: Eq + Clone> ReceiverCodebook<V> {
    /// Creates a receiver codebook whose bindings expire `ttl` time
    /// units after last use.
    #[must_use]
    pub fn new(ttl: u64) -> Self {
        ReceiverCodebook {
            ttl,
            bindings: HashMap::new(),
            conflicts: 0,
        }
    }

    /// Number of live bindings (without pruning).
    #[must_use]
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether no bindings are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Conflicts detected so far.
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Learns a definition `code → value` heard at `now`.
    pub fn learn(&mut self, code: TransactionId, value: V, now: u64) -> LearnOutcome {
        self.expire(now);
        match self.bindings.get_mut(&code) {
            None => {
                self.bindings.insert(
                    code,
                    Binding {
                        value,
                        bound_at: now,
                        last_used: now,
                    },
                );
                LearnOutcome::Bound
            }
            Some(binding) if binding.value == value => {
                binding.last_used = now;
                LearnOutcome::Refreshed
            }
            Some(binding) => {
                binding.value = value;
                binding.bound_at = now;
                binding.last_used = now;
                self.conflicts += 1;
                LearnOutcome::Conflict
            }
        }
    }

    /// Resolves a code heard at `now`, refreshing the binding's
    /// lifetime.
    pub fn resolve(&mut self, code: TransactionId, now: u64) -> Option<&V> {
        self.expire(now);
        match self.bindings.get_mut(&code) {
            Some(binding) => {
                binding.last_used = now;
                Some(&binding.value)
            }
            None => None,
        }
    }

    /// Age of a live binding at `now`.
    #[must_use]
    pub fn bound_for(&self, code: TransactionId, now: u64) -> Option<u64> {
        self.bindings
            .get(&code)
            .map(|b| now.saturating_sub(b.bound_at))
    }

    /// Drops bindings idle longer than the ttl; returns how many
    /// expired.
    pub fn expire(&mut self, now: u64) -> usize {
        let ttl = self.ttl;
        let before = self.bindings.len();
        self.bindings
            .retain(|_, binding| now.saturating_sub(binding.last_used) <= ttl);
        before - self.bindings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space(bits: u8) -> IdentifierSpace {
        IdentifierSpace::new(bits).unwrap()
    }

    #[test]
    fn sender_reuses_code_for_same_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut book: SenderCodebook<u32> = SenderCodebook::new(space(8), 8);
        let a = book.encode(7, &mut rng);
        let b = book.encode(7, &mut rng);
        assert_eq!(a, b);
        assert_eq!(book.len(), 1);
        assert_eq!(book.code_of(&7), Some(a));
    }

    #[test]
    fn sender_assigns_fresh_code_after_retire() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut book: SenderCodebook<u32> = SenderCodebook::new(space(16), 8);
        let first = book.encode(7, &mut rng);
        assert_eq!(book.retire(&7), Some(first));
        let second = book.encode(7, &mut rng);
        // With a 16-bit space the chance of re-drawing the same code is
        // 2^-16; a fixed seed makes this deterministic.
        assert_ne!(first, second);
    }

    #[test]
    fn sender_avoids_observed_codes() {
        let s = space(3);
        let mut rng = StdRng::seed_from_u64(3);
        let mut book: SenderCodebook<u32> = SenderCodebook::new(s, 8);
        for v in [0u64, 1, 2, 3] {
            book.observe(s.id(v).unwrap());
        }
        for value in 10..30u32 {
            let code = book.encode(value, &mut rng);
            assert!(code.value() >= 4, "picked an observed code {code}");
        }
    }

    #[test]
    fn sender_retire_all_clears() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut book: SenderCodebook<u32> = SenderCodebook::new(space(8), 0);
        book.encode(1, &mut rng);
        book.encode(2, &mut rng);
        assert!(!book.is_empty());
        book.retire_all();
        assert!(book.is_empty());
        assert_eq!(book.code_of(&1), None);
    }

    #[test]
    fn receiver_binds_resolves_refreshes() {
        let s = space(8);
        let code = s.id(9).unwrap();
        let mut book: ReceiverCodebook<u32> = ReceiverCodebook::new(100);
        assert_eq!(book.learn(code, 42, 0), LearnOutcome::Bound);
        assert_eq!(book.learn(code, 42, 10), LearnOutcome::Refreshed);
        assert_eq!(book.resolve(code, 20), Some(&42));
        assert_eq!(book.conflicts(), 0);
    }

    #[test]
    fn receiver_detects_conflicts_newest_wins() {
        let s = space(8);
        let code = s.id(9).unwrap();
        let mut book: ReceiverCodebook<u32> = ReceiverCodebook::new(100);
        book.learn(code, 1, 0);
        assert_eq!(book.learn(code, 2, 5), LearnOutcome::Conflict);
        assert_eq!(book.conflicts(), 1);
        assert_eq!(book.resolve(code, 6), Some(&2));
    }

    #[test]
    fn receiver_expiry_prevents_stale_conflicts() {
        // Temporal locality: reusing a code long after its binding died
        // is not a conflict — the ephemeral design working as intended.
        let s = space(8);
        let code = s.id(9).unwrap();
        let mut book: ReceiverCodebook<u32> = ReceiverCodebook::new(50);
        book.learn(code, 1, 0);
        assert_eq!(book.learn(code, 2, 500), LearnOutcome::Bound);
        assert_eq!(book.conflicts(), 0);
    }

    #[test]
    fn resolve_refreshes_lifetime() {
        let s = space(8);
        let code = s.id(3).unwrap();
        let mut book: ReceiverCodebook<u32> = ReceiverCodebook::new(50);
        book.learn(code, 5, 0);
        assert!(book.resolve(code, 40).is_some());
        // Last use at 40 keeps it alive at 80.
        assert!(book.resolve(code, 80).is_some());
        // But silence past the ttl kills it.
        assert!(book.resolve(code, 200).is_none());
    }

    #[test]
    fn bound_for_reports_binding_age() {
        let s = space(8);
        let code = s.id(3).unwrap();
        let mut book: ReceiverCodebook<u32> = ReceiverCodebook::new(1000);
        book.learn(code, 5, 100);
        assert_eq!(book.bound_for(code, 150), Some(50));
        // Conflict rebinds: age resets.
        book.learn(code, 6, 160);
        assert_eq!(book.bound_for(code, 170), Some(10));
    }

    #[test]
    fn expire_returns_count() {
        let s = space(8);
        let mut book: ReceiverCodebook<u32> = ReceiverCodebook::new(10);
        book.learn(s.id(1).unwrap(), 1, 0);
        book.learn(s.id(2).unwrap(), 2, 5);
        assert_eq!(book.expire(100), 2);
        assert!(book.is_empty());
    }
}
