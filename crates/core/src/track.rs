//! Receiver-side transaction tracking and ground-truth collision
//! detection.
//!
//! A transaction is "any computation during which some state must be
//! maintained by the nodes involved" (Section 1). [`TransactionTracker`]
//! maintains that per-identifier state on a receiver: which transactions
//! are currently in flight, when they were last heard from, and — when
//! ground-truth source identities are available (the instrumented
//! validation mode of Section 5.1) — which transactions *would have
//! been* corrupted by an identifier collision.
//!
//! Ground truth matters because a pure RETRI receiver cannot always tell
//! a collision from a normal loss; the paper's experiment augments every
//! fragment with the sender's globally unique identifier precisely so
//! the receiver can count collisions exactly. The tracker implements
//! that methodology.

use core::fmt;
use std::collections::HashMap;

use crate::id::TransactionId;

/// A ground-truth, globally unique source identity.
///
/// In the paper's instrumented driver this is the node's static unique
/// identifier, carried in every fragment *for measurement only* — it is
/// never counted against protocol header overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SourceId(pub u64);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// What happened when a packet of a transaction arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketOutcome {
    /// First packet of a new transaction.
    Started,
    /// Another packet of an already-active transaction from the same
    /// source.
    Continued,
    /// The identifier is already in use by a *different* source: an
    /// identifier collision. The transaction state now belongs to
    /// neither sender and both transactions are counted as collided.
    Collided {
        /// The source that held the identifier before this packet.
        previous: SourceId,
    },
}

/// Counters accumulated by a [`TransactionTracker`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrackerStats {
    /// Transactions that started (first packet seen).
    pub started: u64,
    /// Transactions explicitly completed.
    pub completed: u64,
    /// Transactions that timed out without completing.
    pub expired: u64,
    /// Identifier-collision events detected (each event corrupts the
    /// transactions of two senders).
    pub collisions: u64,
}

#[derive(Debug, Clone)]
struct ActiveTransaction {
    source: SourceId,
    started_at: u64,
    last_heard: u64,
    packets: u64,
    poisoned: bool,
}

/// Tracks in-flight transactions by ephemeral identifier and detects
/// identifier collisions against ground-truth source identities.
///
/// # Examples
///
/// ```
/// use retri::track::{PacketOutcome, SourceId, TransactionTracker};
/// use retri::IdentifierSpace;
///
/// # fn main() -> Result<(), retri::ModelError> {
/// let space = IdentifierSpace::new(8)?;
/// let mut tracker = TransactionTracker::new(1_000);
///
/// let id = space.id(0x5C)?;
/// let alice = SourceId(1);
/// let bob = SourceId(2);
///
/// assert_eq!(tracker.packet(id, alice, 10), PacketOutcome::Started);
/// assert_eq!(tracker.packet(id, alice, 20), PacketOutcome::Continued);
///
/// // Bob picked the same ephemeral identifier while Alice's transaction
/// // is still active: a collision, detected via ground truth.
/// assert_eq!(
///     tracker.packet(id, bob, 30),
///     PacketOutcome::Collided { previous: alice }
/// );
/// assert_eq!(tracker.stats().collisions, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TransactionTracker {
    ttl: u64,
    active: HashMap<TransactionId, ActiveTransaction>,
    stats: TrackerStats,
}

impl TransactionTracker {
    /// Creates a tracker whose transactions expire `ttl` time units
    /// after their last packet.
    #[must_use]
    pub fn new(ttl: u64) -> Self {
        TransactionTracker {
            ttl,
            active: HashMap::new(),
            stats: TrackerStats::default(),
        }
    }

    /// The inactivity timeout.
    #[must_use]
    pub fn ttl(&self) -> u64 {
        self.ttl
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> TrackerStats {
        self.stats
    }

    /// Number of transactions currently in flight.
    #[must_use]
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Whether `id` currently has an active transaction.
    #[must_use]
    pub fn is_active(&self, id: TransactionId) -> bool {
        self.active.contains_key(&id)
    }

    /// Records a packet of transaction `id` from `source` at time `now`.
    ///
    /// Expired transactions are garbage-collected lazily as a side
    /// effect.
    pub fn packet(&mut self, id: TransactionId, source: SourceId, now: u64) -> PacketOutcome {
        self.expire(now);
        match self.active.get_mut(&id) {
            None => {
                self.active.insert(
                    id,
                    ActiveTransaction {
                        source,
                        started_at: now,
                        last_heard: now,
                        packets: 1,
                        poisoned: false,
                    },
                );
                self.stats.started += 1;
                PacketOutcome::Started
            }
            Some(txn) if txn.source == source => {
                txn.last_heard = now;
                txn.packets += 1;
                PacketOutcome::Continued
            }
            Some(txn) => {
                let previous = txn.source;
                // Both senders' transactions are now corrupted; keep the
                // entry (ownership transfers to the newcomer, as a real
                // reassembler would interleave fragments) but poison it
                // so completion is not counted as success.
                txn.source = source;
                txn.last_heard = now;
                txn.packets += 1;
                txn.poisoned = true;
                self.stats.collisions += 1;
                // The colliding newcomer is also a started transaction.
                self.stats.started += 1;
                PacketOutcome::Collided { previous }
            }
        }
    }

    /// Completes transaction `id` (e.g. a checksum-verified reassembly).
    ///
    /// Returns `true` if the transaction was active, uncollided, and
    /// owned by `source` — i.e. a genuine end-to-end success. A
    /// completion attempt by a source that does not own the identifier
    /// leaves the owner's state untouched.
    pub fn complete(&mut self, id: TransactionId, source: SourceId, now: u64) -> bool {
        self.expire(now);
        let owned = matches!(self.active.get(&id), Some(txn) if txn.source == source);
        if !owned {
            return false;
        }
        let txn = self.active.remove(&id).expect("checked above");
        if txn.poisoned {
            false
        } else {
            self.stats.completed += 1;
            true
        }
    }

    /// Drops transactions idle longer than the ttl; returns how many
    /// expired.
    pub fn expire(&mut self, now: u64) -> usize {
        let ttl = self.ttl;
        let before = self.active.len();
        self.active
            .retain(|_, txn| now.saturating_sub(txn.last_heard) <= ttl);
        let dropped = before - self.active.len();
        self.stats.expired += dropped as u64;
        dropped
    }

    /// Packets recorded for an active transaction, if any.
    #[must_use]
    pub fn packets_of(&self, id: TransactionId) -> Option<u64> {
        self.active.get(&id).map(|txn| txn.packets)
    }

    /// Age of an active transaction at `now`, if any.
    #[must_use]
    pub fn age_of(&self, id: TransactionId, now: u64) -> Option<u64> {
        self.active
            .get(&id)
            .map(|txn| now.saturating_sub(txn.started_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::IdentifierSpace;

    fn id(value: u64) -> TransactionId {
        IdentifierSpace::new(8).unwrap().id(value).unwrap()
    }

    #[test]
    fn lifecycle_start_continue_complete() {
        let mut tracker = TransactionTracker::new(100);
        let alice = SourceId(1);
        assert_eq!(tracker.packet(id(1), alice, 0), PacketOutcome::Started);
        assert_eq!(tracker.packet(id(1), alice, 5), PacketOutcome::Continued);
        assert_eq!(tracker.packets_of(id(1)), Some(2));
        assert!(tracker.complete(id(1), alice, 10));
        assert_eq!(tracker.stats().completed, 1);
        assert!(!tracker.is_active(id(1)));
    }

    #[test]
    fn collision_detected_and_poisons_transaction() {
        let mut tracker = TransactionTracker::new(100);
        let alice = SourceId(1);
        let bob = SourceId(2);
        tracker.packet(id(9), alice, 0);
        let outcome = tracker.packet(id(9), bob, 1);
        assert_eq!(outcome, PacketOutcome::Collided { previous: alice });
        assert_eq!(tracker.stats().collisions, 1);
        // Neither sender can now complete successfully.
        assert!(!tracker.complete(id(9), alice, 2));
        tracker.packet(id(9), bob, 3);
        assert!(!tracker.complete(id(9), bob, 4));
        assert_eq!(tracker.stats().completed, 0);
    }

    #[test]
    fn collision_counts_both_directions_once() {
        let mut tracker = TransactionTracker::new(100);
        tracker.packet(id(3), SourceId(1), 0);
        tracker.packet(id(3), SourceId(2), 1);
        tracker.packet(id(3), SourceId(2), 2); // continuation, no new event
        assert_eq!(tracker.stats().collisions, 1);
        // A third party colliding again is a new event.
        tracker.packet(id(3), SourceId(3), 3);
        assert_eq!(tracker.stats().collisions, 2);
    }

    #[test]
    fn same_id_after_completion_is_a_fresh_transaction() {
        // Ephemeral reuse over time is the whole point: temporal locality
        // means successive transactions may share an identifier without
        // colliding.
        let mut tracker = TransactionTracker::new(100);
        let alice = SourceId(1);
        let bob = SourceId(2);
        tracker.packet(id(7), alice, 0);
        assert!(tracker.complete(id(7), alice, 5));
        assert_eq!(tracker.packet(id(7), bob, 10), PacketOutcome::Started);
        assert_eq!(tracker.stats().collisions, 0);
    }

    #[test]
    fn expiry_frees_identifier() {
        let mut tracker = TransactionTracker::new(50);
        tracker.packet(id(4), SourceId(1), 0);
        assert_eq!(tracker.expire(100), 1);
        assert_eq!(tracker.stats().expired, 1);
        // Reuse after expiry is not a collision.
        assert_eq!(
            tracker.packet(id(4), SourceId(2), 101),
            PacketOutcome::Started
        );
        assert_eq!(tracker.stats().collisions, 0);
    }

    #[test]
    fn packets_refresh_expiry() {
        let mut tracker = TransactionTracker::new(50);
        let alice = SourceId(1);
        tracker.packet(id(4), alice, 0);
        tracker.packet(id(4), alice, 40);
        // At t=80 the last packet is only 40 old: still alive.
        assert_eq!(tracker.expire(80), 0);
        assert!(tracker.is_active(id(4)));
    }

    #[test]
    fn lazy_expiry_applies_before_collision_check() {
        let mut tracker = TransactionTracker::new(50);
        tracker.packet(id(4), SourceId(1), 0);
        // Bob arrives long after Alice's transaction died; no collision.
        assert_eq!(
            tracker.packet(id(4), SourceId(2), 500),
            PacketOutcome::Started
        );
        assert_eq!(tracker.stats().collisions, 0);
        assert_eq!(tracker.stats().expired, 1);
    }

    #[test]
    fn complete_unknown_or_foreign_returns_false() {
        let mut tracker = TransactionTracker::new(100);
        assert!(!tracker.complete(id(1), SourceId(1), 0));
        tracker.packet(id(1), SourceId(1), 1);
        assert!(!tracker.complete(id(1), SourceId(99), 2));
        // Alice's entry was consumed by the failed foreign completion?
        // No: a foreign complete must not destroy the state either.
        // (Regression guard: remove() semantics.)
        assert_eq!(tracker.stats().completed, 0);
    }

    #[test]
    fn age_and_active_len() {
        let mut tracker = TransactionTracker::new(1_000);
        tracker.packet(id(1), SourceId(1), 100);
        tracker.packet(id(2), SourceId(2), 150);
        assert_eq!(tracker.active_len(), 2);
        assert_eq!(tracker.age_of(id(1), 160), Some(60));
        assert_eq!(tracker.age_of(id(9), 160), None);
    }

    #[test]
    fn source_display() {
        assert_eq!(SourceId(12).to_string(), "node#12");
    }

    #[test]
    fn stats_started_counts_colliders() {
        let mut tracker = TransactionTracker::new(100);
        tracker.packet(id(1), SourceId(1), 0);
        tracker.packet(id(1), SourceId(2), 1);
        assert_eq!(tracker.stats().started, 2);
    }
}
