//! Transaction identifiers and the spaces they are drawn from.
//!
//! A RETRI identifier has no inherent meaning — no topology, no node
//! identity. It is only a *probabilistically unique* tag providing
//! continuity among the packets of one transaction, and it is only
//! meaningful relative to the [`IdentifierSpace`] (a width in bits) it
//! was drawn from.

use core::fmt;

use rand::RngCore;
use retri_model::{IdBits, ModelError};

/// A pool of `2^H` transaction identifiers for a fixed width `H`.
///
/// The width is the paper's central tuning knob: it should scale with the
/// network's *transaction density*, not its total size (Section 3.2).
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use retri::IdentifierSpace;
///
/// # fn main() -> Result<(), retri::ModelError> {
/// let space = IdentifierSpace::new(9)?; // the paper's optimum at T=16
/// assert_eq!(space.len(), 512);
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let id = space.sample(&mut rng);
/// assert!(space.contains(id));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IdentifierSpace {
    bits: IdBits,
}

impl IdentifierSpace {
    /// Creates a space of `bits`-wide identifiers.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IdBitsOutOfRange`] unless `bits` is in
    /// `1..=64`.
    pub fn new(bits: u8) -> Result<Self, ModelError> {
        Ok(IdentifierSpace {
            bits: IdBits::new(bits)?,
        })
    }

    /// Creates a space from an already validated width.
    #[must_use]
    pub fn from_bits(bits: IdBits) -> Self {
        IdentifierSpace { bits }
    }

    /// The identifier width.
    #[must_use]
    pub fn bits(self) -> IdBits {
        self.bits
    }

    /// Number of distinct identifiers, `2^H`.
    #[must_use]
    pub fn len(self) -> u128 {
        self.bits.space_len()
    }

    /// A space is never empty (width is at least one bit); provided for
    /// `len`/`is_empty` pairing convention.
    #[must_use]
    pub fn is_empty(self) -> bool {
        false
    }

    /// The bitmask covering valid identifier values.
    #[must_use]
    pub fn mask(self) -> u64 {
        if self.bits.get() == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits.get()) - 1
        }
    }

    /// Whether `id` was drawn from a space of this width.
    #[must_use]
    pub fn contains(self, id: TransactionId) -> bool {
        id.bits() == self.bits
    }

    /// Draws an identifier uniformly at random.
    ///
    /// Because the pool size is a power of two, masking the low bits of a
    /// uniform `u64` is exactly uniform — no rejection needed.
    #[must_use]
    pub fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> TransactionId {
        TransactionId {
            value: rng.next_u64() & self.mask(),
            bits: self.bits,
        }
    }

    /// Constructs a specific identifier value in this space.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IdBitsOutOfRange`] — reusing the width error
    /// domain — if `value` does not fit in the width. (Callers decoding
    /// identifiers off the wire should mask first; this constructor is
    /// strict so tests catch accidental truncation.)
    pub fn id(self, value: u64) -> Result<TransactionId, ModelError> {
        if value & !self.mask() != 0 {
            return Err(ModelError::IdBitsOutOfRange(self.bits.get()));
        }
        Ok(TransactionId {
            value,
            bits: self.bits,
        })
    }

    /// Iterates every identifier in the space, in numeric order.
    ///
    /// # Panics
    ///
    /// Panics if the width exceeds 32 bits: enumerating larger pools is a
    /// programming error, not a realistic use.
    pub fn iter(self) -> impl Iterator<Item = TransactionId> {
        assert!(
            self.bits.get() <= 32,
            "refusing to enumerate a {} identifier pool",
            self.bits
        );
        let bits = self.bits;
        (0..self.len() as u64).map(move |value| TransactionId { value, bits })
    }
}

impl fmt::Display for IdentifierSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} identifier space", self.bits)
    }
}

/// A random, ephemeral transaction identifier: a value plus the width of
/// the space it was drawn from.
///
/// Identifiers of different widths never compare equal, mirroring the
/// wire reality that a 7-bit and an 8-bit header field are different
/// protocols.
///
/// # Examples
///
/// ```
/// use retri::IdentifierSpace;
///
/// # fn main() -> Result<(), retri::ModelError> {
/// let space = IdentifierSpace::new(8)?;
/// let id = space.id(0x2A)?;
/// assert_eq!(id.value(), 0x2A);
/// assert_eq!(id.bits().get(), 8);
/// assert_eq!(id.to_string(), "0x2a/8");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransactionId {
    value: u64,
    bits: IdBits,
}

impl TransactionId {
    /// The identifier value (fits in `bits()` bits).
    #[must_use]
    pub fn value(self) -> u64 {
        self.value
    }

    /// The width of the space this identifier was drawn from.
    #[must_use]
    pub fn bits(self) -> IdBits {
        self.bits
    }
}

impl fmt::Display for TransactionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}/{}", self.value, self.bits.get())
    }
}

impl fmt::LowerHex for TransactionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.value, f)
    }
}

impl fmt::UpperHex for TransactionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.value, f)
    }
}

impl fmt::Binary for TransactionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.value, f)
    }
}

impl fmt::Octal for TransactionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.value, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn space_len_and_mask_agree() {
        for bits in 1..=64u8 {
            let space = IdentifierSpace::new(bits).unwrap();
            if bits < 64 {
                assert_eq!(space.mask() as u128 + 1, space.len());
            } else {
                assert_eq!(space.mask(), u64::MAX);
                assert_eq!(space.len(), 1u128 << 64);
            }
            assert!(!space.is_empty());
        }
    }

    #[test]
    fn sample_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        for bits in [1u8, 3, 8, 16, 33, 64] {
            let space = IdentifierSpace::new(bits).unwrap();
            for _ in 0..500 {
                let id = space.sample(&mut rng);
                assert_eq!(id.value() & !space.mask(), 0);
                assert!(space.contains(id));
            }
        }
    }

    #[test]
    fn sample_covers_small_space() {
        // Over many draws from a 3-bit space, every identifier appears.
        let space = IdentifierSpace::new(3).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[space.sample(&mut rng).value() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let space = IdentifierSpace::new(4).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 16];
        let draws = 32_000;
        for _ in 0..draws {
            counts[space.sample(&mut rng).value() as usize] += 1;
        }
        let expected = draws as f64 / 16.0;
        // Chi-square with 15 dof: 99.9th percentile ~ 37.7.
        let chi2: f64 = counts
            .iter()
            .map(|&c| (c as f64 - expected).powi(2) / expected)
            .sum();
        assert!(chi2 < 37.7, "chi2 = {chi2}");
    }

    #[test]
    fn strict_constructor_rejects_overflow() {
        let space = IdentifierSpace::new(4).unwrap();
        assert!(space.id(15).is_ok());
        assert!(space.id(16).is_err());
    }

    #[test]
    fn ids_of_different_widths_are_distinct() {
        let a = IdentifierSpace::new(4).unwrap().id(3).unwrap();
        let b = IdentifierSpace::new(5).unwrap().id(3).unwrap();
        assert_ne!(a, b);
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn iter_enumerates_whole_space_in_order() {
        let space = IdentifierSpace::new(5).unwrap();
        let all: Vec<u64> = space.iter().map(|id| id.value()).collect();
        assert_eq!(all, (0..32).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "refusing to enumerate")]
    fn iter_refuses_huge_spaces() {
        let _ = IdentifierSpace::new(33).unwrap().iter();
    }

    #[test]
    fn formatting_impls() {
        let id = IdentifierSpace::new(8).unwrap().id(0x2A).unwrap();
        assert_eq!(format!("{id}"), "0x2a/8");
        assert_eq!(format!("{id:x}"), "2a");
        assert_eq!(format!("{id:X}"), "2A");
        assert_eq!(format!("{id:b}"), "101010");
        assert_eq!(format!("{id:o}"), "52");
    }

    #[test]
    fn space_display_mentions_bits() {
        assert_eq!(
            IdentifierSpace::new(9).unwrap().to_string(),
            "9 bits identifier space"
        );
    }

    #[test]
    fn sixty_four_bit_space_works_end_to_end() {
        let space = IdentifierSpace::new(64).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let id = space.sample(&mut rng);
        assert!(space.contains(id));
        assert!(space.id(u64::MAX).is_ok());
    }
}
