//! Estimating the local transaction density `T`.
//!
//! The paper's adaptive listening rule needs each node to know roughly
//! how many transactions it sees concurrently: *"each node can estimate
//! T based on the number of concurrent transactions it observes"*
//! (Section 5.1), and Section 8 lists better `T` estimation as ongoing
//! work. [`DensityEstimator`] is that estimator: it counts distinct
//! transaction identifiers heard within a sliding time horizon and
//! optionally smooths the count with an exponentially weighted moving
//! average.
//!
//! Reads are **pure**: [`DensityEstimator::estimated_density`] and
//! [`DensityEstimator::active_count`] take `&self` and may be called
//! any number of times at the same instant without changing the
//! estimate — a property the Dynamic-Frame Aloha controller, which
//! queries density every frame, depends on. Between observations the
//! smoothed estimate decays toward the live count as a function of
//! *elapsed time* (time constant `ttl`), not of how often anyone asked.

use std::collections::HashMap;

use retri_model::Density;

/// A node's running estimate of the transaction density it observes.
///
/// Time is an opaque `u64` in whatever unit the caller uses consistently
/// (the simulator uses microseconds). A transaction counts as
/// *concurrent* if any of its packets was heard within the last
/// `ttl` time units.
///
/// # Examples
///
/// ```
/// use retri::density::DensityEstimator;
///
/// let mut est = DensityEstimator::new(1_000);
/// est.observe(0xA, 10);
/// est.observe(0xB, 500);
/// est.observe(0xA, 700); // same transaction again: still one
///
/// // Two concurrent foreign transactions plus this node itself.
/// assert_eq!(est.estimated_density(800).get(), 3);
///
/// // Reads are pure: asking again changes nothing.
/// assert_eq!(est.estimated_density(800).get(), 3);
///
/// // After the horizon passes, the estimate relaxes to just this node.
/// assert_eq!(est.estimated_density(10_000).get(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DensityEstimator {
    ttl: u64,
    alpha: f64,
    last_seen: HashMap<u64, u64>,
    /// The smoothed count as of `last_update`; `None` before the first
    /// observation.
    smoothed: Option<f64>,
    /// The instant of the most recent observation (the checkpoint the
    /// time-based decay in [`Self::smoothed_at`] measures from).
    last_update: u64,
}

impl DensityEstimator {
    /// Creates an estimator with a concurrency horizon of `ttl` time
    /// units and no smoothing (the estimate is the instantaneous count).
    #[must_use]
    pub fn new(ttl: u64) -> Self {
        DensityEstimator {
            ttl,
            alpha: 1.0,
            last_seen: HashMap::new(),
            smoothed: None,
            last_update: 0,
        }
    }

    /// Creates an estimator that smooths the concurrent count.
    ///
    /// Each observation applies one EWMA step,
    /// `estimate ← alpha · count + (1 - alpha) · estimate`; between
    /// observations the estimate decays toward the live count with time
    /// constant `ttl` (after `ttl` silent time units the memory of the
    /// old estimate has faded by a factor `1 - alpha`). Decay depends
    /// only on elapsed time — never on how many times the estimate was
    /// read.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    #[must_use]
    pub fn with_smoothing(ttl: u64, alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "smoothing factor {alpha} outside (0, 1]"
        );
        DensityEstimator {
            ttl,
            alpha,
            last_seen: HashMap::new(),
            smoothed: None,
            last_update: 0,
        }
    }

    /// The concurrency horizon.
    #[must_use]
    pub fn ttl(&self) -> u64 {
        self.ttl
    }

    /// Records that transaction identifier `key` was heard at `now`.
    ///
    /// This is the only path that advances the smoothing state; reads
    /// never do.
    pub fn observe(&mut self, key: u64, now: u64) {
        // Decay the previous estimate up to `now` *before* this
        // observation lands, so the EWMA step blends against the value
        // a pure read would have returned a moment earlier.
        let decayed = self.smoothed_at(now);
        self.last_seen
            .entry(key)
            .and_modify(|t| *t = (*t).max(now))
            .or_insert(now);
        self.prune(now);
        let count = self.last_seen.len() as f64;
        self.smoothed = Some(match self.smoothed {
            Some(_) => self.alpha * count + (1.0 - self.alpha) * decayed,
            None => count,
        });
        self.last_update = now;
    }

    /// Drops entries that expired before `now`. Optional: expired
    /// entries are already invisible to every read; this only releases
    /// their memory.
    pub fn advance(&mut self, now: u64) {
        self.prune(now);
    }

    fn prune(&mut self, now: u64) {
        let ttl = self.ttl;
        self.last_seen
            .retain(|_, &mut seen| now.saturating_sub(seen) <= ttl);
    }

    /// Number of distinct foreign transactions heard within the horizon.
    /// Pure: expired entries are skipped, not pruned.
    #[must_use]
    pub fn active_count(&self, now: u64) -> usize {
        self.last_seen
            .values()
            .filter(|&&seen| now.saturating_sub(seen) <= self.ttl)
            .count()
    }

    /// The smoothed count as it stands at `now`: the checkpointed EWMA
    /// value relaxed toward the live count by `(1 - alpha)^(Δt / ttl)`.
    fn smoothed_at(&self, now: u64) -> f64 {
        let count = self.active_count(now) as f64;
        let Some(prev) = self.smoothed else {
            return count;
        };
        let dt = now.saturating_sub(self.last_update);
        if dt == 0 {
            return prev;
        }
        // ttl == 0 makes the exponent infinite and the weight zero: an
        // estimator with no horizon holds no memory.
        let weight = (1.0 - self.alpha).powf(dt as f64 / self.ttl.max(1) as f64);
        count + (prev - count) * weight
    }

    /// The density estimate `T̂`: concurrent foreign transactions plus
    /// one for this node's own transaction. Always at least one.
    ///
    /// Pure: calling this any number of times at the same `now` returns
    /// the same value and leaves the estimator unchanged.
    #[must_use]
    pub fn estimated_density(&self, now: u64) -> Density {
        let t = self.smoothed_at(now).round() as u64 + 1;
        Density::new(t.max(1)).expect("t >= 1 by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_node_estimates_density_one() {
        let est = DensityEstimator::new(100);
        assert_eq!(est.estimated_density(0).get(), 1);
    }

    #[test]
    fn distinct_ids_accumulate() {
        let mut est = DensityEstimator::new(100);
        for key in 0..4u64 {
            est.observe(key, 10);
        }
        assert_eq!(est.active_count(10), 4);
        assert_eq!(est.estimated_density(10).get(), 5);
    }

    #[test]
    fn repeated_id_counts_once() {
        let mut est = DensityEstimator::new(100);
        est.observe(7, 1);
        est.observe(7, 2);
        est.observe(7, 3);
        assert_eq!(est.active_count(3), 1);
    }

    #[test]
    fn entries_expire_after_ttl() {
        let mut est = DensityEstimator::new(50);
        est.observe(1, 0);
        est.observe(2, 10);
        assert_eq!(est.active_count(40), 2);
        assert_eq!(est.active_count(55), 1); // id 1 heard at 0 expired
        assert_eq!(est.active_count(200), 0);
    }

    #[test]
    fn reobservation_refreshes_expiry() {
        let mut est = DensityEstimator::new(50);
        est.observe(1, 0);
        est.observe(1, 40);
        assert_eq!(est.active_count(80), 1, "refreshed at 40, alive until 90");
    }

    #[test]
    fn estimate_tracks_paper_testbed() {
        // Five transmitters continuously sending: a receiver that hears
        // all five within the horizon estimates T=6 (five foreign plus
        // itself); a transmitter hearing the other four estimates T=5.
        let mut est = DensityEstimator::new(1_000);
        for key in 0..4u64 {
            est.observe(key, key * 10);
        }
        assert_eq!(est.estimated_density(50).get(), 5);
    }

    #[test]
    fn smoothing_damps_spikes() {
        let mut smooth = DensityEstimator::with_smoothing(100, 0.2);
        let mut raw = DensityEstimator::new(100);
        for key in 0..10u64 {
            smooth.observe(key, 5);
            raw.observe(key, 5);
        }
        // Raw sees all 10 instantly; the smoothed estimate lags below.
        assert_eq!(raw.estimated_density(5).get(), 11);
        assert!(smooth.estimated_density(5).get() < 11);
    }

    #[test]
    fn smoothed_estimate_decays_during_silence() {
        // Decay is a function of elapsed time, not of query count: a
        // single read after a long silence already sees the relaxed
        // estimate.
        let mut est = DensityEstimator::with_smoothing(100, 0.5);
        for key in 0..8u64 {
            est.observe(key, 0);
        }
        let busy = est.estimated_density(50).get();
        let quiet = est.estimated_density(10_000).get();
        assert!(quiet < busy);
        assert_eq!(quiet, 1);
        // Partial silence decays partially: past the ttl horizon the
        // live count is 0, and each further ttl shrinks the memory of
        // the busy estimate by (1 - alpha).
        let partial = est.estimated_density(300).get();
        assert!(quiet <= partial && partial <= busy);
    }

    #[test]
    fn reads_are_pure() {
        // Two estimators fed identically; one is read hundreds of times
        // in between. Every subsequent value must match the unread twin.
        let mut hammered = DensityEstimator::with_smoothing(100, 0.3);
        let mut pristine = DensityEstimator::with_smoothing(100, 0.3);
        for key in 0..6u64 {
            hammered.observe(key, key);
            pristine.observe(key, key);
        }
        let first = hammered.estimated_density(50);
        for _ in 0..100 {
            assert_eq!(hammered.estimated_density(50), first);
            let _ = hammered.active_count(50);
        }
        assert_eq!(pristine.estimated_density(50), first);
        // Reads do not perturb future observations either.
        hammered.observe(99, 120);
        pristine.observe(99, 120);
        assert_eq!(
            hammered.estimated_density(150),
            pristine.estimated_density(150)
        );
    }

    #[test]
    fn advance_releases_memory_without_changing_reads() {
        let mut est = DensityEstimator::with_smoothing(50, 0.4);
        for key in 0..5u64 {
            est.observe(key, 0);
        }
        est.observe(9, 200); // the only entry still alive at 200
        let before = est.estimated_density(220);
        est.advance(220);
        assert_eq!(est.active_count(220), 1);
        assert_eq!(est.estimated_density(220), before);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn smoothing_rejects_zero_alpha() {
        let _ = DensityEstimator::with_smoothing(10, 0.0);
    }

    #[test]
    fn ttl_accessor() {
        assert_eq!(DensityEstimator::new(123).ttl(), 123);
    }
}
