//! Estimating the local transaction density `T`.
//!
//! The paper's adaptive listening rule needs each node to know roughly
//! how many transactions it sees concurrently: *"each node can estimate
//! T based on the number of concurrent transactions it observes"*
//! (Section 5.1), and Section 8 lists better `T` estimation as ongoing
//! work. [`DensityEstimator`] is that estimator: it counts distinct
//! transaction identifiers heard within a sliding time horizon and
//! optionally smooths the count with an exponentially weighted moving
//! average.

use std::collections::HashMap;

use retri_model::Density;

/// A node's running estimate of the transaction density it observes.
///
/// Time is an opaque `u64` in whatever unit the caller uses consistently
/// (the simulator uses microseconds). A transaction counts as
/// *concurrent* if any of its packets was heard within the last
/// `ttl` time units.
///
/// # Examples
///
/// ```
/// use retri::density::DensityEstimator;
///
/// let mut est = DensityEstimator::new(1_000);
/// est.observe(0xA, 10);
/// est.observe(0xB, 500);
/// est.observe(0xA, 700); // same transaction again: still one
///
/// // Two concurrent foreign transactions plus this node itself.
/// assert_eq!(est.estimated_density(800).get(), 3);
///
/// // After the horizon passes, the estimate relaxes to just this node.
/// assert_eq!(est.estimated_density(10_000).get(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DensityEstimator {
    ttl: u64,
    alpha: f64,
    last_seen: HashMap<u64, u64>,
    smoothed: Option<f64>,
}

impl DensityEstimator {
    /// Creates an estimator with a concurrency horizon of `ttl` time
    /// units and no smoothing (the estimate is the instantaneous count).
    #[must_use]
    pub fn new(ttl: u64) -> Self {
        DensityEstimator {
            ttl,
            alpha: 1.0,
            last_seen: HashMap::new(),
            smoothed: None,
        }
    }

    /// Creates an estimator that smooths the concurrent count with an
    /// EWMA: `estimate ← alpha · count + (1 - alpha) · estimate`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    #[must_use]
    pub fn with_smoothing(ttl: u64, alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "smoothing factor {alpha} outside (0, 1]"
        );
        DensityEstimator {
            ttl,
            alpha,
            last_seen: HashMap::new(),
            smoothed: None,
        }
    }

    /// The concurrency horizon.
    #[must_use]
    pub fn ttl(&self) -> u64 {
        self.ttl
    }

    /// Records that transaction identifier `key` was heard at `now`.
    pub fn observe(&mut self, key: u64, now: u64) {
        self.last_seen
            .entry(key)
            .and_modify(|t| *t = (*t).max(now))
            .or_insert(now);
        let count = self.active_count(now) as f64;
        self.smoothed = Some(match self.smoothed {
            Some(prev) => self.alpha * count + (1.0 - self.alpha) * prev,
            None => count,
        });
    }

    /// Number of distinct foreign transactions heard within the horizon,
    /// pruning expired entries.
    pub fn active_count(&mut self, now: u64) -> usize {
        let ttl = self.ttl;
        self.last_seen
            .retain(|_, &mut seen| now.saturating_sub(seen) <= ttl);
        self.last_seen.len()
    }

    /// The density estimate `T̂`: concurrent foreign transactions plus
    /// one for this node's own transaction. Always at least one.
    pub fn estimated_density(&mut self, now: u64) -> Density {
        let current = self.active_count(now) as f64;
        let smoothed = match self.smoothed {
            // The smoothed value can lag a quiet period; never report
            // more than the live count plus the smoothing memory allows,
            // and decay toward the live count.
            Some(prev) => {
                let blended = self.alpha * current + (1.0 - self.alpha) * prev;
                self.smoothed = Some(blended);
                blended
            }
            None => current,
        };
        let t = smoothed.round() as u64 + 1;
        Density::new(t.max(1)).expect("t >= 1 by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_node_estimates_density_one() {
        let mut est = DensityEstimator::new(100);
        assert_eq!(est.estimated_density(0).get(), 1);
    }

    #[test]
    fn distinct_ids_accumulate() {
        let mut est = DensityEstimator::new(100);
        for key in 0..4u64 {
            est.observe(key, 10);
        }
        assert_eq!(est.active_count(10), 4);
        assert_eq!(est.estimated_density(10).get(), 5);
    }

    #[test]
    fn repeated_id_counts_once() {
        let mut est = DensityEstimator::new(100);
        est.observe(7, 1);
        est.observe(7, 2);
        est.observe(7, 3);
        assert_eq!(est.active_count(3), 1);
    }

    #[test]
    fn entries_expire_after_ttl() {
        let mut est = DensityEstimator::new(50);
        est.observe(1, 0);
        est.observe(2, 10);
        assert_eq!(est.active_count(40), 2);
        assert_eq!(est.active_count(55), 1); // id 1 heard at 0 expired
        assert_eq!(est.active_count(200), 0);
    }

    #[test]
    fn reobservation_refreshes_expiry() {
        let mut est = DensityEstimator::new(50);
        est.observe(1, 0);
        est.observe(1, 40);
        assert_eq!(est.active_count(80), 1, "refreshed at 40, alive until 90");
    }

    #[test]
    fn estimate_tracks_paper_testbed() {
        // Five transmitters continuously sending: a receiver that hears
        // all five within the horizon estimates T=6 (five foreign plus
        // itself); a transmitter hearing the other four estimates T=5.
        let mut est = DensityEstimator::new(1_000);
        for key in 0..4u64 {
            est.observe(key, key * 10);
        }
        assert_eq!(est.estimated_density(50).get(), 5);
    }

    #[test]
    fn smoothing_damps_spikes() {
        let mut smooth = DensityEstimator::with_smoothing(100, 0.2);
        let mut raw = DensityEstimator::new(100);
        for key in 0..10u64 {
            smooth.observe(key, 5);
            raw.observe(key, 5);
        }
        // Raw sees all 10 instantly; the smoothed estimate lags below.
        assert_eq!(raw.estimated_density(5).get(), 11);
        assert!(smooth.estimated_density(5).get() < 11);
    }

    #[test]
    fn smoothed_estimate_decays_during_silence() {
        let mut est = DensityEstimator::with_smoothing(100, 0.5);
        for key in 0..8u64 {
            est.observe(key, 0);
        }
        let busy = est.estimated_density(50).get();
        // Long silence: repeated queries decay toward 1.
        let mut quiet = 0;
        for step in 0..20 {
            quiet = est.estimated_density(1_000 + step).get();
        }
        assert!(quiet < busy);
        assert_eq!(quiet, 1);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn smoothing_rejects_zero_alpha() {
        let _ = DensityEstimator::with_smoothing(10, 0.0);
    }

    #[test]
    fn ttl_accessor() {
        assert_eq!(DensityEstimator::new(123).ttl(), 123);
    }
}
