//! Structured identifier-selection families: permutation codes and
//! predictable sequential selection.
//!
//! The paper's selectors ([`crate::select`]) all draw *randomly*; the
//! related work names two structured alternatives at opposite ends of
//! the IPv4-ID selection taxonomy (correctness / security /
//! performance):
//!
//! - **Permutation codes** (PERIDOT): instead of independent random
//!   draws, walk a keyed pseudorandom permutation of the identifier
//!   space. Within any window of `space.len()` consecutive draws a
//!   single node never repeats an identifier — self-collisions are
//!   impossible *by construction*, and to an eavesdropper without the
//!   key the sequence is indistinguishable from fresh random draws.
//!   [`PermutationSelector`] implements this with a small keyed Feistel
//!   network over the `H`-bit space.
//! - **Sequential selection**: the taxonomy's weak-but-common policy
//!   (the classic IPv4 ID counter) — start at a random offset, then
//!   increment. It also never self-collides within a window (a counter
//!   is a cyclic permutation), but every observed identifier reveals
//!   the next one, so an eavesdropper can *predict* upcoming ids and
//!   force reassembly collisions. [`SequentialSelector`] exists as the
//!   attack target for the adversarial differential harness in
//!   `retri-bench`.
//!
//! Both selectors ignore [`IdSelector::observe`]: their structure, not
//! the air, decides the next identifier.

use rand::RngCore;

use crate::id::{IdentifierSpace, TransactionId};
use crate::select::IdSelector;

/// Feistel rounds for the keyed permutation. Four rounds already make a
/// pseudorandom permutation out of a pseudorandom function (Luby–Rackoff);
/// six adds margin for the unbalanced splits of odd widths at negligible
/// cost.
const FEISTEL_ROUNDS: u32 = 6;

/// Keyed round function: SplitMix64 finalization over the key, round
/// number and half-block value. Any 64-bit mixer works here — the
/// permutation only needs the rounds to be *different, key-dependent*
/// functions.
fn round_mix(key: u64, round: u32, value: u64) -> u64 {
    let mut state = key ^ u64::from(round).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ value;
    rand::splitmix64(&mut state)
}

/// Applies the keyed permutation of the `bits`-wide space to `index`.
///
/// An unbalanced Feistel network: the block is split into a
/// `bits - bits/2` high half and a `bits/2` low half, and rounds
/// alternately XOR a keyed mix of one half into the other. Every round
/// is self-inverse given the other half, so the composition is a
/// bijection on `0..2^bits` for *any* key — the property the
/// no-repeat-within-a-window guarantee rests on.
fn permute(bits: u8, key: u64, index: u64) -> u64 {
    debug_assert!((1..=64).contains(&bits), "width {bits} out of range");
    if bits == 1 {
        // No room to split: the only two permutations of {0, 1} are
        // identity and swap, chosen by one key bit.
        return index ^ (key & 1);
    }
    let right_bits = bits / 2;
    let left_bits = bits - right_bits; // <= 32, so the shifts below are safe
    let right_mask = (1u64 << right_bits) - 1;
    let left_mask = (1u64 << left_bits) - 1;
    let mut left = (index >> right_bits) & left_mask;
    let mut right = index & right_mask;
    for round in 0..FEISTEL_ROUNDS {
        if round % 2 == 0 {
            left ^= round_mix(key, round, right) & left_mask;
        } else {
            right ^= round_mix(key, round, left) & right_mask;
        }
    }
    (left << right_bits) | right
}

/// PERIDOT-style permutation selector: walks a keyed pseudorandom
/// permutation of the identifier space.
///
/// The key is drawn lazily from the caller's RNG on the first
/// [`select`], so in a simulation every node derives a distinct key from
/// its own deterministic stream; [`with_key`] pins it for tests. The
/// walk position wraps modulo `space.len()`, so within **any**
/// `space.len()` consecutive draws no identifier repeats (the sequence
/// is one fixed permutation traversed cyclically).
///
/// [`select`]: IdSelector::select
/// [`with_key`]: PermutationSelector::with_key
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use retri::permutation::PermutationSelector;
/// use retri::select::IdSelector;
/// use retri::IdentifierSpace;
///
/// # fn main() -> Result<(), retri::ModelError> {
/// let space = IdentifierSpace::new(6)?; // 64 identifiers
/// let mut selector = PermutationSelector::new(space);
/// let mut rng = StdRng::seed_from_u64(5);
///
/// // A full window of draws covers the space with no repeats.
/// let mut seen = std::collections::HashSet::new();
/// for _ in 0..64 {
///     assert!(seen.insert(selector.select(&mut rng).value()));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PermutationSelector {
    space: IdentifierSpace,
    key: Option<u64>,
    cursor: u64,
}

impl PermutationSelector {
    /// Creates a permutation selector over `space`; the key is drawn
    /// from the RNG passed to the first [`IdSelector::select`] call.
    #[must_use]
    pub fn new(space: IdentifierSpace) -> Self {
        PermutationSelector {
            space,
            key: None,
            cursor: 0,
        }
    }

    /// Creates a permutation selector with a fixed key (reproducible
    /// sequences for tests and cross-node analysis).
    #[must_use]
    pub fn with_key(space: IdentifierSpace, key: u64) -> Self {
        PermutationSelector {
            space,
            key: Some(key),
            cursor: 0,
        }
    }

    /// The permutation key, once drawn.
    #[must_use]
    pub fn key(&self) -> Option<u64> {
        self.key
    }
}

impl IdSelector for PermutationSelector {
    fn space(&self) -> IdentifierSpace {
        self.space
    }

    fn select(&mut self, rng: &mut dyn RngCore) -> TransactionId {
        let key = *self.key.get_or_insert_with(|| rng.next_u64());
        let value = permute(self.space.bits().get(), key, self.cursor);
        self.cursor = self.cursor.wrapping_add(1) & self.space.mask();
        self.space
            .id(value)
            .expect("permutation output stays inside the space")
    }
}

/// The taxonomy's predictable policy: a counter from a random start.
///
/// The start offset is drawn lazily from the caller's RNG on the first
/// [`select`] (real sequential implementations randomize the initial
/// counter too), after which each draw is the previous value plus one,
/// modulo the space size. Like any cyclic permutation it never
/// self-collides within `space.len()` draws — but one observed
/// identifier lets an eavesdropper predict **all** subsequent ones,
/// which is exactly the weakness the adversarial harness measures.
///
/// [`select`]: IdSelector::select
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use retri::permutation::SequentialSelector;
/// use retri::select::IdSelector;
/// use retri::IdentifierSpace;
///
/// # fn main() -> Result<(), retri::ModelError> {
/// let space = IdentifierSpace::new(8)?;
/// let mut selector = SequentialSelector::new(space);
/// let mut rng = StdRng::seed_from_u64(1);
///
/// let first = selector.select(&mut rng).value();
/// let second = selector.select(&mut rng).value();
/// assert_eq!(second, (first + 1) % 256); // entirely predictable
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SequentialSelector {
    space: IdentifierSpace,
    next: Option<u64>,
}

impl SequentialSelector {
    /// Creates a sequential selector; the start offset is drawn from
    /// the RNG passed to the first [`IdSelector::select`] call.
    #[must_use]
    pub fn new(space: IdentifierSpace) -> Self {
        SequentialSelector { space, next: None }
    }

    /// Creates a sequential selector starting at `start` (masked into
    /// the space), for reproducible tests.
    #[must_use]
    pub fn with_start(space: IdentifierSpace, start: u64) -> Self {
        SequentialSelector {
            space,
            next: Some(start & space.mask()),
        }
    }
}

impl IdSelector for SequentialSelector {
    fn space(&self) -> IdentifierSpace {
        self.space
    }

    fn select(&mut self, rng: &mut dyn RngCore) -> TransactionId {
        let mask = self.space.mask();
        let current = *self.next.get_or_insert_with(|| rng.next_u64() & mask);
        self.next = Some(current.wrapping_add(1) & mask);
        self.space
            .id(current)
            .expect("counter is masked into the space")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn space(bits: u8) -> IdentifierSpace {
        IdentifierSpace::new(bits).unwrap()
    }

    #[test]
    fn permute_is_bijective_for_every_small_width_and_key() {
        for bits in 1..=10u8 {
            for key in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
                let len = 1u64 << bits;
                let outputs: HashSet<u64> = (0..len).map(|i| permute(bits, key, i)).collect();
                assert_eq!(
                    outputs.len() as u64,
                    len,
                    "not a bijection at bits={bits} key={key:#x}"
                );
                assert!(outputs.iter().all(|&v| v < len));
            }
        }
    }

    #[test]
    fn full_window_covers_space_without_repeats() {
        let s = space(8);
        let mut selector = PermutationSelector::new(s);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = HashSet::new();
        for _ in 0..256 {
            assert!(seen.insert(selector.select(&mut rng).value()));
        }
        assert_eq!(seen.len(), 256);
    }

    #[test]
    fn any_window_of_space_draws_is_repeat_free() {
        // The guarantee is not anchored to the first draw: burn an
        // arbitrary prefix, then check a full window.
        let s = space(6);
        let mut selector = PermutationSelector::with_key(s, 99);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..17 {
            let _ = selector.select(&mut rng);
        }
        let mut seen = HashSet::new();
        for _ in 0..64 {
            assert!(seen.insert(selector.select(&mut rng).value()));
        }
    }

    #[test]
    fn walk_is_cyclic_past_the_window() {
        let s = space(4);
        let mut selector = PermutationSelector::with_key(s, 7);
        let mut rng = StdRng::seed_from_u64(5);
        let first: Vec<u64> = (0..16).map(|_| selector.select(&mut rng).value()).collect();
        let second: Vec<u64> = (0..16).map(|_| selector.select(&mut rng).value()).collect();
        assert_eq!(first, second, "the walk repeats the same permutation");
    }

    #[test]
    fn key_is_drawn_lazily_and_deterministically_from_the_rng() {
        let s = space(12);
        let mut a = PermutationSelector::new(s);
        let mut b = PermutationSelector::new(s);
        assert_eq!(a.key(), None);
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        let seq_a: Vec<u64> = (0..32).map(|_| a.select(&mut rng_a).value()).collect();
        let seq_b: Vec<u64> = (0..32).map(|_| b.select(&mut rng_b).value()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(a.key().is_some());

        let mut c = PermutationSelector::new(s);
        let mut rng_c = StdRng::seed_from_u64(12);
        let seq_c: Vec<u64> = (0..32).map(|_| c.select(&mut rng_c).value()).collect();
        assert_ne!(seq_a, seq_c, "different streams draw different keys");
    }

    #[test]
    fn distinct_keys_walk_distinct_permutations() {
        let s = space(16);
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = PermutationSelector::with_key(s, 1);
        let mut b = PermutationSelector::with_key(s, 2);
        let seq_a: Vec<u64> = (0..64).map(|_| a.select(&mut rng).value()).collect();
        let seq_b: Vec<u64> = (0..64).map(|_| b.select(&mut rng).value()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn permutation_ignores_observations() {
        let s = space(8);
        let mut with_obs = PermutationSelector::with_key(s, 5);
        let mut without = PermutationSelector::with_key(s, 5);
        let mut rng = StdRng::seed_from_u64(2);
        with_obs.observe(s.id(200).unwrap());
        assert_eq!(
            with_obs.select(&mut rng).value(),
            without.select(&mut rng).value()
        );
    }

    #[test]
    fn permutation_works_at_full_width() {
        let s = space(64);
        let mut selector = PermutationSelector::new(s);
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(selector.select(&mut rng).value()));
        }
    }

    #[test]
    fn one_bit_space_alternates() {
        let s = space(1);
        for key in [0u64, 1] {
            let mut selector = PermutationSelector::with_key(s, key);
            let mut rng = StdRng::seed_from_u64(7);
            let a = selector.select(&mut rng).value();
            let b = selector.select(&mut rng).value();
            assert_ne!(a, b);
            assert!(a <= 1 && b <= 1);
        }
    }

    #[test]
    fn sequential_increments_modulo_space() {
        let s = space(4);
        let mut selector = SequentialSelector::with_start(s, 14);
        let mut rng = StdRng::seed_from_u64(8);
        let values: Vec<u64> = (0..4).map(|_| selector.select(&mut rng).value()).collect();
        assert_eq!(values, vec![14, 15, 0, 1], "wraps at the space boundary");
    }

    #[test]
    fn sequential_start_is_random_but_in_range() {
        let s = space(10);
        let mut starts = HashSet::new();
        for seed in 0..20u64 {
            let mut selector = SequentialSelector::new(s);
            let mut rng = StdRng::seed_from_u64(seed);
            let first = selector.select(&mut rng).value();
            assert!(first < 1024);
            starts.insert(first);
        }
        assert!(starts.len() > 1, "start offsets vary with the stream");
    }

    #[test]
    fn sequential_ignores_observations() {
        let s = space(8);
        let mut selector = SequentialSelector::with_start(s, 10);
        let mut rng = StdRng::seed_from_u64(9);
        selector.observe(s.id(11).unwrap());
        assert_eq!(selector.select(&mut rng).value(), 10);
        assert_eq!(selector.select(&mut rng).value(), 11);
    }

    #[test]
    fn sequential_works_at_full_width() {
        let s = space(64);
        let mut selector = SequentialSelector::with_start(s, u64::MAX);
        let mut rng = StdRng::seed_from_u64(10);
        assert_eq!(selector.select(&mut rng).value(), u64::MAX);
        assert_eq!(selector.select(&mut rng).value(), 0);
    }

    #[test]
    fn new_selectors_are_object_safe() {
        let s = space(5);
        let mut rng = StdRng::seed_from_u64(11);
        let mut selectors: Vec<Box<dyn IdSelector>> = vec![
            Box::new(PermutationSelector::new(s)),
            Box::new(SequentialSelector::new(s)),
        ];
        for selector in &mut selectors {
            let id = selector.select(&mut rng);
            assert!(s.contains(id));
            selector.observe(id);
        }
    }
}
