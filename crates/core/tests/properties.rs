//! Property-based tests of the RETRI core invariants.

use std::collections::HashSet;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use retri::permutation::PermutationSelector;
use retri::select::{AdaptiveListeningSelector, IdSelector, ListeningSelector, UniformSelector};
use retri::track::{PacketOutcome, SourceId, TransactionTracker};
use retri::IdentifierSpace;

proptest! {
    /// A permutation selector never repeats an identifier within any
    /// window of `space.len()` consecutive draws — not just the first
    /// window: after an arbitrary burn-in prefix, the next full window
    /// is still repeat-free, for every key and width.
    #[test]
    fn permutation_never_repeats_within_a_window(
        bits in 1u8..=10,
        key in any::<u64>(),
        burn in 0usize..100,
    ) {
        let space = IdentifierSpace::new(bits).unwrap();
        let window = space.len() as usize;
        let mut selector = PermutationSelector::with_key(space, key);
        let mut rng = StdRng::seed_from_u64(0); // ignored once keyed
        for _ in 0..burn {
            selector.select(&mut rng);
        }
        let mut seen = HashSet::with_capacity(window);
        for _ in 0..window {
            let id = selector.select(&mut rng);
            prop_assert!(space.contains(id));
            prop_assert!(seen.insert(id.value()), "repeat inside the window");
        }
    }

    /// An adaptive listening selector never returns an identifier it is
    /// currently avoiding while free identifiers remain; once the
    /// avoided set saturates the space it falls back to a plain
    /// uniform draw, which must still land in the space. (The plain
    /// listening selector's version of this invariant is
    /// `listening_never_picks_avoided` below.)
    #[test]
    fn adaptive_never_picks_avoided_until_saturated(
        bits in 2u8..=8,
        seed in any::<u64>(),
        observed in proptest::collection::vec((any::<u64>(), 0u64..1_000_000), 0..300),
    ) {
        let space = IdentifierSpace::new(bits).unwrap();
        let mut selector = AdaptiveListeningSelector::new(space, 2_000_000);
        for (raw, at) in &observed {
            selector.observe_at(space.id(raw & space.mask()).unwrap(), *at);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let free_exists = (selector.avoided_len() as u128) < space.len();
        for _ in 0..50 {
            let picked = selector.select_at(&mut rng, 1_000_000);
            prop_assert!(space.contains(picked));
            if free_exists {
                prop_assert!(!selector.avoids(picked));
            }
        }
    }

    /// Every selected identifier fits its space, for every width and
    /// seed.
    #[test]
    fn selection_stays_in_space(bits in 1u8..=64, seed in any::<u64>()) {
        let space = IdentifierSpace::new(bits).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut uniform = UniformSelector::new(space);
        let mut listening = ListeningSelector::new(space, 8);
        for _ in 0..50 {
            let a = uniform.select(&mut rng);
            let b = listening.select(&mut rng);
            prop_assert!(space.contains(a));
            prop_assert!(space.contains(b));
            listening.observe(a);
        }
    }

    /// A listening selector never picks an identifier inside its window
    /// while free identifiers remain.
    #[test]
    fn listening_never_picks_avoided(
        bits in 2u8..=10,
        seed in any::<u64>(),
        observed in proptest::collection::vec(any::<u64>(), 0..32),
    ) {
        let space = IdentifierSpace::new(bits).unwrap();
        let mut selector = ListeningSelector::new(space, observed.len());
        for raw in &observed {
            selector.observe(space.id(raw & space.mask()).unwrap());
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let free_exists = (selector.avoided_len() as u128) < space.len();
        for _ in 0..50 {
            let picked = selector.select(&mut rng);
            if free_exists {
                prop_assert!(!selector.avoids(picked));
            } else {
                prop_assert!(space.contains(picked));
            }
        }
    }

    /// The listening window never retains more observations than its
    /// capacity, no matter the observation sequence or resizes.
    #[test]
    fn window_capacity_respected(
        bits in 2u8..=8,
        window in 0usize..20,
        observations in proptest::collection::vec(any::<u64>(), 0..100),
        shrink_to in 0usize..20,
    ) {
        let space = IdentifierSpace::new(bits).unwrap();
        let mut selector = ListeningSelector::new(space, window);
        for raw in &observations {
            selector.observe(space.id(raw & space.mask()).unwrap());
            prop_assert!(selector.avoided_len() <= window);
        }
        selector.set_window(shrink_to);
        prop_assert!(selector.avoided_len() <= shrink_to);
    }

    /// Tracker invariant: collisions are counted exactly when two
    /// distinct sources interleave on a live identifier, and completed
    /// transactions never exceed started ones.
    #[test]
    fn tracker_accounting_is_consistent(
        events in proptest::collection::vec(
            (0u64..8, 0u64..4, 1u64..20), 1..200
        ),
    ) {
        let space = IdentifierSpace::new(3).unwrap();
        let mut tracker = TransactionTracker::new(50);
        let mut now = 0u64;
        let mut observed_collisions = 0u64;
        for (raw_id, source, dt) in events {
            now += dt;
            let id = space.id(raw_id).unwrap();
            match tracker.packet(id, SourceId(source), now) {
                PacketOutcome::Collided { previous } => {
                    observed_collisions += 1;
                    prop_assert_ne!(previous, SourceId(source));
                }
                PacketOutcome::Started | PacketOutcome::Continued => {}
            }
        }
        let stats = tracker.stats();
        prop_assert_eq!(stats.collisions, observed_collisions);
        prop_assert!(stats.completed <= stats.started);
        prop_assert!(tracker.active_len() as u64 <= stats.started);
    }

    /// Identifier round trip: any value masked into a space is accepted
    /// by the strict constructor and survives unchanged.
    #[test]
    fn id_round_trip(bits in 1u8..=64, raw in any::<u64>()) {
        let space = IdentifierSpace::new(bits).unwrap();
        let value = raw & space.mask();
        let id = space.id(value).unwrap();
        prop_assert_eq!(id.value(), value);
        prop_assert_eq!(id.bits().get(), bits);
    }
}
