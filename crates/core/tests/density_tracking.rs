//! Statistical test: `AdaptiveListeningSelector::estimated_density`
//! tracks the true offered transaction density.
//!
//! Section 5.1's adaptive window needs `T̂` to follow the real number
//! of concurrent transmitters. Each regime below simulates a cell of
//! `T` transmitters (the estimating node plus `T - 1` foreign ones,
//! each beaconing a transaction identifier every 10 ms), queries the
//! estimate in steady state, and scores the trial. The per-regime
//! success proportion over many independent seeds then gets a 99%
//! Wilson lower bound that must clear 0.9 — a Wilson-style tolerance
//! rather than a brittle exact assertion, because the estimator counts
//! *distinct identifiers*, and independently drawn identifiers
//! occasionally collide (two transmitters sharing an id look like one
//! transaction on the air — a real property of the protocol, not an
//! estimator bug).
//!
//! The saturated regime pins the documented clamp: once every
//! identifier in a small space is live on the air, the estimate cannot
//! exceed `|space| + 1` no matter how many transmitters pile on — the
//! air simply cannot show more distinct identifiers than exist. That
//! under-report is why the paper's response to density is to grow `H`
//! (Section 4), not to grow the listening window.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retri::select::AdaptiveListeningSelector;
use retri::IdentifierSpace;
use retri_model::stats::{WilsonInterval, Z_99};

/// Concurrency horizon, µs: 10 beacon periods, so every live foreign
/// transaction is comfortably inside it in steady state.
const TTL_MICROS: u64 = 100_000;

/// Beacon period, µs.
const STEP_MICROS: u64 = 10_000;

/// Independent trials per regime.
const TRIALS: u64 = 200;

/// Runs one cell to steady state and returns the density estimate.
///
/// `transmitters` counts the estimating node itself; the `T - 1`
/// foreign transmitters each hold one identifier (drawn uniformly, as
/// the paper's selector does) and beacon it every [`STEP_MICROS`] for
/// two full horizons before the query.
fn steady_state_estimate(seed: u64, bits: u8, transmitters: u64) -> u64 {
    let space = IdentifierSpace::new(bits).expect("valid width");
    let mut selector = AdaptiveListeningSelector::new(space, TTL_MICROS);
    let mut rng = StdRng::seed_from_u64(seed);
    let foreign: Vec<_> = (1..transmitters).map(|_| space.sample(&mut rng)).collect();
    let mut now = 0;
    while now < 2 * TTL_MICROS {
        now += STEP_MICROS;
        for &id in &foreign {
            selector.observe_at(id, now);
        }
    }
    selector.estimated_density(now)
}

/// Asserts that `success` held on enough of [`TRIALS`] independent
/// seeds: the 99% Wilson lower bound on the proportion clears 0.9.
fn assert_mostly(regime: &str, success: impl Fn(u64) -> bool) {
    let successes = (0..TRIALS).filter(|&trial| success(trial)).count() as u64;
    let wilson = WilsonInterval::of(successes, TRIALS, Z_99);
    assert!(
        wilson.low > 0.9,
        "{regime}: only {successes}/{TRIALS} trials tracked density \
         (99% Wilson lower bound {:.4})",
        wilson.low
    );
}

#[test]
fn low_density_is_tracked_exactly() {
    // T = 3 in a 16-bit space: identifier collisions are ~2^-16, so
    // the estimate should equal the true density essentially always.
    assert_mostly("low (T = 3, H = 16)", |trial| {
        steady_state_estimate(trial, 16, 3) == 3
    });
}

#[test]
fn medium_density_is_tracked_within_one() {
    // T = 9 in an 8-bit space: with eight foreign identifiers in a
    // 256-id pool, a single pairwise collision (≈ 10% of trials) makes
    // two transmitters indistinguishable on the air, so the tolerance
    // is ±1; being off by two needs two simultaneous collisions.
    assert_mostly("medium (T = 9, H = 8)", |trial| {
        let estimate = steady_state_estimate(trial, 8, 9);
        (8..=9).contains(&estimate)
    });
}

#[test]
fn saturated_density_clamps_at_the_space_size() {
    // T = 64 in a 3-bit space: 63 foreign transmitters over 8 possible
    // identifiers occupy the whole space (coupon collector), and the
    // estimate clamps at |space| + 1 = 9 — the documented under-report
    // once the air shows every identifier that exists.
    let space_len = 1u64 << 3;
    assert_mostly("saturated (T = 64, H = 3)", |trial| {
        steady_state_estimate(trial, 3, 64) == space_len + 1
    });
    // And it can never exceed the clamp, whatever the seed.
    for trial in 0..TRIALS {
        assert!(steady_state_estimate(trial, 3, 64) <= space_len + 1);
    }
}

#[test]
fn the_estimate_decays_back_to_one_after_silence() {
    let space = IdentifierSpace::new(16).unwrap();
    let mut selector = AdaptiveListeningSelector::new(space, TTL_MICROS);
    let mut rng = StdRng::seed_from_u64(7);
    let mut now = 0;
    for _ in 0..20 {
        now += STEP_MICROS;
        for _ in 0..5 {
            let id = space.sample(&mut rng);
            selector.observe_at(id, now);
        }
    }
    assert!(selector.estimated_density(now) > 1);
    // One full horizon of silence expires every observation; the
    // estimate returns to the floor of 1 (this node alone).
    now += TTL_MICROS + STEP_MICROS;
    assert_eq!(selector.estimated_density(now), 1);
}
